//! The concurrent FIFO batch scheduler (see the crate docs for the
//! batch lifecycle).

use std::error::Error;
use std::fmt;

use qucp_circuit::Circuit;
use qucp_core::pipeline::{Pipeline, PlannedWorkload};
use qucp_core::queue::QueueStats;
use qucp_core::threshold::parallel_count_for_threshold;
use qucp_core::{CoreError, ParallelConfig, ProgramResult, Strategy};
use qucp_device::Device;
use qucp_sim::ExecutionConfig;

use crate::job::{Job, JobResult};

/// How the programs of a planned batch are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One scoped thread per program (the default).
    #[default]
    Concurrent,
    /// In program order on the calling thread. Exists to assert that
    /// concurrent execution is deterministic: both modes must produce
    /// bit-for-bit identical reports.
    Serial,
}

/// Batch-scheduler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Hard cap on jobs per batch (1 = dedicated mode).
    pub max_parallel: usize,
    /// EFS fidelity-threshold gate (Fig. 4): when set, the co-schedule
    /// width is additionally capped by
    /// [`parallel_count_for_threshold`] evaluated on the head-of-line
    /// circuit. `None` disables the gate.
    pub fidelity_threshold: Option<f64>,
    /// Base RNG seed; batch `b`, program `i` derive their trajectory
    /// seeds from `(seed, b, i)` only.
    pub seed: u64,
    /// Run the cancellation peephole pass before mapping.
    pub optimize: bool,
    /// Concurrent or serial per-batch execution.
    pub mode: ExecutionMode,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            max_parallel: 4,
            fidelity_threshold: None,
            seed: 0x5EED,
            optimize: true,
            mode: ExecutionMode::Concurrent,
        }
    }
}

/// Errors of the batch-scheduling runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// `max_parallel` was zero.
    ZeroParallel,
    /// A single job cannot be placed on the device even alone.
    JobUnplaceable {
        /// The job's identifier.
        job_id: u64,
        /// The planning error that rejected it.
        source: CoreError,
    },
    /// A planning or execution stage failed.
    Core(CoreError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ZeroParallel => write!(f, "max_parallel must be positive"),
            RuntimeError::JobUnplaceable { job_id, source } => {
                write!(f, "job {job_id} cannot be placed: {source}")
            }
            RuntimeError::Core(e) => write!(f, "pipeline failed: {e}"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::JobUnplaceable { source, .. } => Some(source),
            RuntimeError::Core(e) => Some(e),
            RuntimeError::ZeroParallel => None,
        }
    }
}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> Self {
        RuntimeError::Core(e)
    }
}

/// One dispatched batch of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Batch position in dispatch order.
    pub batch_index: usize,
    /// Ids of the jobs the batch carried, in program order.
    pub job_ids: Vec<u64>,
    /// Simulated start time (ns).
    pub start: f64,
    /// Simulated completion time (ns): start + merged makespan.
    pub completion: f64,
    /// Merged-schedule makespan of the batch (ns).
    pub makespan: f64,
    /// Physical qubits the batch occupied.
    pub used_qubits: usize,
    /// Cross-program one-hop CNOT overlaps in the merged schedule.
    pub conflict_count: usize,
}

/// The complete outcome of serving a job stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Queue statistics, directly comparable with
    /// [`simulate_queue`](qucp_core::queue::simulate_queue) (times in
    /// ns).
    pub stats: QueueStats,
    /// Every dispatched batch, in order.
    pub batches: Vec<BatchReport>,
    /// Per-job results, in input order.
    pub job_results: Vec<JobResult>,
}

/// A FIFO batch scheduler executing multi-programmed workloads on a
/// device through the staged `qucp-core` pipeline.
#[derive(Debug)]
pub struct BatchScheduler {
    device: Device,
    strategy: Strategy,
    pipeline: Pipeline,
    cfg: RuntimeConfig,
}

impl BatchScheduler {
    /// Creates a scheduler for `device` running every batch under
    /// `strategy`.
    pub fn new(device: Device, strategy: Strategy, cfg: RuntimeConfig) -> Self {
        let pipeline = Pipeline::from_strategy(&strategy);
        BatchScheduler {
            device,
            strategy,
            pipeline,
            cfg,
        }
    }

    /// The device this scheduler dispatches to.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Serves `jobs` to completion and reports queue statistics plus
    /// per-job results.
    ///
    /// Deterministic: the report depends only on the jobs and the
    /// configuration (including seed), never on thread timing.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::ZeroParallel`] on a zero batch cap;
    /// [`RuntimeError::JobUnplaceable`] when a job cannot run even in a
    /// dedicated batch; [`RuntimeError::Core`] on backend failures.
    pub fn run(&self, jobs: &[Job]) -> Result<RunReport, RuntimeError> {
        if self.cfg.max_parallel == 0 {
            return Err(RuntimeError::ZeroParallel);
        }
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| jobs[a].arrival.total_cmp(&jobs[b].arrival).then(a.cmp(&b)));

        let mut clock = 0.0f64;
        let mut next = 0usize;
        let mut batches: Vec<BatchReport> = Vec::new();
        let mut job_results: Vec<Option<JobResult>> = vec![None; jobs.len()];
        let mut total_wait = 0.0;
        let mut total_turnaround = 0.0;
        let mut busy_qubit_time = 0.0;
        let mut busy_time = 0.0;

        while next < order.len() {
            let head = &jobs[order[next]];
            if clock < head.arrival {
                clock = head.arrival;
            }
            let cap = self.batch_cap(head)?;

            // Pack the FIFO prefix of arrived jobs that fits the chip.
            let mut members: Vec<usize> = Vec::new();
            let mut used = 0usize;
            let mut i = next;
            while i < order.len() && members.len() < cap {
                let j = &jobs[order[i]];
                if j.arrival > clock || used + j.circuit.width() > self.device.num_qubits() {
                    break;
                }
                used += j.circuit.width();
                members.push(order[i]);
                i += 1;
            }
            if members.is_empty() {
                // Head job wider than the chip: planning it alone
                // surfaces the precise error (ProgramTooWide).
                members.push(order[next]);
            }

            // Plan the batch; on partition failure shrink from the tail
            // (the allocator can run out of *connected* regions before
            // it runs out of qubits).
            let (members, plan) = self.plan_batch(jobs, members)?;
            next += members.len();

            let batch_index = batches.len();
            let batch_seed = derive_batch_seed(self.cfg.seed, batch_index);
            let results = self.execute_batch(jobs, &members, &plan, batch_seed)?;

            let makespan = plan.context.makespan;
            let start = clock;
            let completion = clock + makespan;
            for (pos, (&ji, result)) in members.iter().zip(results).enumerate() {
                let job = &jobs[ji];
                let waiting = start - job.arrival;
                let turnaround = completion - job.arrival;
                total_wait += waiting;
                total_turnaround += turnaround;
                busy_qubit_time += job.circuit.width() as f64 * plan.context.program_makespans[pos];
                job_results[ji] = Some(JobResult {
                    job_id: job.id,
                    batch_index,
                    start,
                    completion,
                    waiting,
                    turnaround,
                    result,
                });
            }
            batches.push(BatchReport {
                batch_index,
                job_ids: members.iter().map(|&ji| jobs[ji].id).collect(),
                start,
                completion,
                makespan,
                used_qubits: plan.used_qubits(),
                conflict_count: plan.context.conflict_count,
            });
            busy_time += makespan;
            clock = completion;
        }

        let n = jobs.len().max(1) as f64;
        Ok(RunReport {
            stats: QueueStats {
                mean_waiting: total_wait / n,
                mean_turnaround: total_turnaround / n,
                makespan: clock,
                mean_throughput: if busy_time > 0.0 {
                    busy_qubit_time / (busy_time * self.device.num_qubits() as f64)
                } else {
                    0.0
                },
                batches: batches.len(),
            },
            batches,
            job_results: job_results.into_iter().map(Option::unwrap).collect(),
        })
    }

    /// The co-schedule cap for a batch led by `head`: `max_parallel`,
    /// further limited by the EFS fidelity threshold when configured.
    ///
    /// A head that cannot be placed even alone surfaces here as
    /// [`RuntimeError::JobUnplaceable`] (the threshold probe allocates
    /// a single copy first), keeping `run`'s error contract identical
    /// with and without the threshold gate.
    fn batch_cap(&self, head: &Job) -> Result<usize, RuntimeError> {
        let Some(threshold) = self.cfg.fidelity_threshold else {
            return Ok(self.cfg.max_parallel);
        };
        let k = parallel_count_for_threshold(
            &self.device,
            &head.circuit,
            threshold,
            self.cfg.max_parallel,
            &self.strategy,
        )
        .map_err(|e| match e {
            e @ (CoreError::PartitionUnavailable { .. } | CoreError::ProgramTooWide { .. }) => {
                RuntimeError::JobUnplaceable {
                    job_id: head.id,
                    source: e,
                }
            }
            e => RuntimeError::Core(e),
        })?;
        Ok(k.max(1))
    }

    /// Plans `members`, shrinking the batch from the tail while the
    /// partitioner cannot place it.
    fn plan_batch(
        &self,
        jobs: &[Job],
        mut members: Vec<usize>,
    ) -> Result<(Vec<usize>, PlannedWorkload), RuntimeError> {
        loop {
            let circuits: Vec<Circuit> =
                members.iter().map(|&ji| jobs[ji].circuit.clone()).collect();
            match self
                .pipeline
                .plan(&self.device, &circuits, self.cfg.optimize)
            {
                Ok(plan) => return Ok((members, plan)),
                Err(
                    e @ (CoreError::PartitionUnavailable { .. } | CoreError::ProgramTooWide { .. }),
                ) => {
                    if members.len() == 1 {
                        return Err(RuntimeError::JobUnplaceable {
                            job_id: jobs[members[0]].id,
                            source: e,
                        });
                    }
                    members.pop();
                }
                Err(e) => return Err(RuntimeError::Core(e)),
            }
        }
    }

    /// Executes every program of a planned batch, one scoped thread per
    /// program (or serially under [`ExecutionMode::Serial`]). Results
    /// come back in program order regardless of thread scheduling.
    fn execute_batch(
        &self,
        jobs: &[Job],
        members: &[usize],
        plan: &PlannedWorkload,
        batch_seed: u64,
    ) -> Result<Vec<ProgramResult>, RuntimeError> {
        let exec_for = |pos: usize| ExecutionConfig {
            shots: jobs[members[pos]].shots,
            seed: batch_seed,
            ..ParallelConfig::default().execution
        };
        match self.cfg.mode {
            ExecutionMode::Serial => (0..members.len())
                .map(|pos| {
                    self.pipeline
                        .backend
                        .run_program(&self.device, plan, pos, &exec_for(pos))
                        .map_err(RuntimeError::Core)
                })
                .collect(),
            ExecutionMode::Concurrent => {
                let backend = &self.pipeline.backend;
                let device = &self.device;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..members.len())
                        .map(|pos| {
                            let exec = exec_for(pos);
                            scope.spawn(move || backend.run_program(device, plan, pos, &exec))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join()
                                .unwrap_or_else(|p| std::panic::resume_unwind(p))
                                .map_err(RuntimeError::Core)
                        })
                        .collect()
                })
            }
        }
    }
}

/// Per-batch seed derivation: a distinct odd stride keeps batch streams
/// disjoint from the per-program golden-ratio stride used inside the
/// backend.
fn derive_batch_seed(base: u64, batch_index: usize) -> u64 {
    base.wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(batch_index as u64 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::synthetic_jobs;
    use qucp_core::strategy;
    use qucp_device::ibm;

    fn quick_cfg(max_parallel: usize, mode: ExecutionMode) -> RuntimeConfig {
        RuntimeConfig {
            max_parallel,
            fidelity_threshold: None,
            seed: 42,
            optimize: true,
            mode,
        }
    }

    fn sched(max_parallel: usize, mode: ExecutionMode) -> BatchScheduler {
        BatchScheduler::new(
            ibm::toronto(),
            strategy::qucp(4.0),
            quick_cfg(max_parallel, mode),
        )
    }

    fn small_jobs(n: usize) -> Vec<Job> {
        synthetic_jobs(n, 200.0, 128, 7)
    }

    #[test]
    fn serves_every_job_exactly_once() {
        let jobs = small_jobs(8);
        let report = sched(3, ExecutionMode::Concurrent).run(&jobs).unwrap();
        assert_eq!(report.job_results.len(), 8);
        for (i, r) in report.job_results.iter().enumerate() {
            assert_eq!(r.job_id, i as u64);
            assert_eq!(r.result.counts.shots(), 128);
            assert!(r.waiting >= 0.0);
            assert!(r.turnaround >= r.waiting);
        }
        let batched: usize = report.batches.iter().map(|b| b.job_ids.len()).sum();
        assert_eq!(batched, 8);
    }

    #[test]
    fn dedicated_mode_runs_one_job_per_batch() {
        let jobs = small_jobs(5);
        let report = sched(1, ExecutionMode::Concurrent).run(&jobs).unwrap();
        assert_eq!(report.stats.batches, 5);
        assert!(report.batches.iter().all(|b| b.job_ids.len() == 1));
    }

    #[test]
    fn concurrent_equals_serial_bit_for_bit() {
        let jobs = small_jobs(9);
        let conc = sched(4, ExecutionMode::Concurrent).run(&jobs).unwrap();
        let serial = sched(4, ExecutionMode::Serial).run(&jobs).unwrap();
        assert_eq!(conc, serial);
    }

    #[test]
    fn concurrent_run_is_reproducible() {
        let jobs = small_jobs(10);
        let a = sched(4, ExecutionMode::Concurrent).run(&jobs).unwrap();
        let b = sched(4, ExecutionMode::Concurrent).run(&jobs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn packing_beats_dedicated_turnaround() {
        let jobs = small_jobs(12);
        let solo = sched(1, ExecutionMode::Concurrent).run(&jobs).unwrap();
        let packed = sched(4, ExecutionMode::Concurrent).run(&jobs).unwrap();
        assert!(
            packed.stats.mean_turnaround < solo.stats.mean_turnaround,
            "packed {} !< dedicated {}",
            packed.stats.mean_turnaround,
            solo.stats.mean_turnaround
        );
        assert!(packed.stats.batches < solo.stats.batches);
        assert!(packed.stats.mean_throughput > solo.stats.mean_throughput);
    }

    #[test]
    fn zero_parallel_is_rejected() {
        let jobs = small_jobs(2);
        let err = sched(0, ExecutionMode::Concurrent).run(&jobs).unwrap_err();
        assert!(matches!(err, RuntimeError::ZeroParallel));
    }

    #[test]
    fn oversized_job_is_unplaceable() {
        let mut jobs = small_jobs(1);
        jobs[0].circuit = qucp_circuit::Circuit::new(64);
        let err = sched(2, ExecutionMode::Concurrent).run(&jobs).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::JobUnplaceable { job_id: 0, .. }
        ));
    }

    #[test]
    fn oversized_job_is_unplaceable_with_threshold_gate_too() {
        // The threshold probe runs before packing; the error contract
        // must not change when the gate is on.
        let mut cfg = quick_cfg(4, ExecutionMode::Concurrent);
        cfg.fidelity_threshold = Some(0.1);
        let mut jobs = small_jobs(1);
        jobs[0].circuit = qucp_circuit::Circuit::new(64);
        let err = BatchScheduler::new(ibm::toronto(), strategy::qucp(4.0), cfg)
            .run(&jobs)
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::JobUnplaceable { job_id: 0, .. }
        ));
    }

    #[test]
    fn fidelity_threshold_zero_degenerates_to_dedicated() {
        let mut cfg = quick_cfg(4, ExecutionMode::Concurrent);
        cfg.fidelity_threshold = Some(0.0);
        let s = BatchScheduler::new(ibm::toronto(), strategy::qucp(4.0), cfg);
        // A homogeneous burst: every batch head admits exactly one copy
        // under a zero threshold (paper: "when the fidelity threshold is
        // zero … only one circuit is executed each time").
        let jobs = small_jobs(4);
        let report = s.run(&jobs).unwrap();
        assert_eq!(report.stats.batches, 4);
    }

    #[test]
    fn late_arrivals_wait_for_their_turn() {
        let mut jobs = small_jobs(2);
        // Second job arrives long after the first batch would finish.
        jobs[1].arrival = 1e9;
        let report = sched(4, ExecutionMode::Concurrent).run(&jobs).unwrap();
        assert_eq!(report.stats.batches, 2);
        assert_eq!(report.job_results[1].waiting, 0.0);
        assert!(report.batches[1].start >= 1e9);
    }
}
