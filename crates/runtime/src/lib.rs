//! # qucp-runtime
//!
//! An **event-driven scheduling service** that turns the paper's
//! analytical cloud-queue argument (Sec. I/II-A) into an executable
//! online system. Where the analytical model
//! (`qucp_core::queue::simulate_queue`) abstracts jobs into durations
//! and the seed runtime served a pre-collected slice FIFO, the
//! [`Service`] accepts **streaming submissions**, delegates admission
//! to a pluggable policy, dispatches across a **fleet of devices**, and
//! reports the same [`QueueStats`](qucp_core::queue::QueueStats) as the
//! model, so all three layers compare head-to-head.
//!
//! ## Service lifecycle: submit → admit → plan → execute → observe
//!
//! 1. **Submit** — [`Service::submit`] validates a [`JobRequest`]
//!    (finite arrival, positive shots, non-empty circuit, sane
//!    threshold) and returns a [`JobTicket`]. Each request may override
//!    the service defaults per job: execution
//!    [`Strategy`](qucp_core::Strategy), shot budget, EFS fidelity
//!    threshold.
//! 2. **Admit** — whenever a device frees up ([`Service::tick`] in
//!    online use, [`Service::run_until_drained`] for batch drains), the
//!    configured [`AdmissionPolicy`] picks the head-of-line job among
//!    the arrived ones and packs riders around it: [`Fifo`] (strict
//!    arrival order, the seed behaviour), [`Backfill`] (smaller jobs
//!    jump a head that does not fit the remaining qubit budget, with a
//!    bounded-starvation guarantee), or [`ShortestJobFirst`]. The EFS
//!    fidelity gate sizes the batch: [`EfsGate::HeadOnly`] replays the
//!    paper's Fig. 4 copy-count probe, [`EfsGate::Batch`] evaluates the
//!    *actual heterogeneous members* against each job's own threshold
//!    (tail shrink), and [`EfsGate::BatchWorstExcess`] evicts the
//!    worst-excess member instead.
//! 3. **Plan** — a pluggable [`RoutingPolicy`] ranks the
//!    [`DeviceRegistry`] entries whose topology admits the batch head:
//!    [`EarliestFree`] (the default) reproduces the pre-seam
//!    earliest-free rule bit-for-bit, while [`CalibrationAware`] scores
//!    each candidate chip by the head's solo-best EFS partition score
//!    (the paper's Eq.-1 metric) blended with queue pressure, so a
//!    well-calibrated chip wins until its backlog outweighs its quality
//!    edge. The expensive partition/candidate probes behind routing and
//!    the head-only EFS gate are **memoized across batches** per
//!    *(device, circuit shape, partition policy)* — a stream of
//!    similar jobs pays the candidate growth once per chip; entries
//!    are valid for one **calibration epoch** of their device and are
//!    dropped when that epoch bumps (see [`Service::route_cache_stats`]
//!    and the live-fleet section below). The batch then runs through
//!    the staged [`Pipeline`](qucp_core::pipeline::Pipeline) of the
//!    head's effective strategy; partition pressure shrinks the batch
//!    from the tail. Every committed decision is recorded as an
//!    [`Event::BatchRouted`] carrying the winning score.
//! 4. **Execute** — every program of the planned batch runs on the
//!    pipeline backend in its own scoped thread (or serially under
//!    [`ExecutionMode::Serial`]); per-program seeds derive from
//!    `(seed, batch index, program index)` only, so concurrent and
//!    serial execution agree **bit-for-bit**. Large jobs additionally
//!    get *intra-program* shot sharding
//!    ([`ServiceBuilder::shot_parallelism`], [`ShotParallelism`]):
//!    each program's trajectory loop splits its shots over worker
//!    threads, deterministic in the shard count and independent of the
//!    thread count. Each job may override the service default
//!    ([`JobRequest::shot_parallelism`]), and
//!    [`ShotParallelism::Auto`] picks the shard count from the job's
//!    shot budget (one shard per 512 shots, capped at 32) so callers
//!    need not hand-tune the split. Orthogonally, the per-shot
//!    *trajectory kernel* ([`ServiceBuilder::trajectory_kernel`],
//!    [`TrajectoryKernel`]) chooses between the bit-pinned replay
//!    stream and the fast survival-skip sampler, with the same
//!    per-job override escape hatch
//!    ([`JobRequest::with_trajectory_kernel`]).
//! 5. **Observe** — every transition ([`Event::JobSubmitted`],
//!    [`Event::BatchPlanned`], [`Event::BatchShrunk`],
//!    [`Event::JobCompleted`]) lands in the service [`EventLog`] and in
//!    every registered [`EventObserver`]; per-device clocks and
//!    statistics accumulate into the drained [`ServiceReport`].
//!
//! ## The live fleet: calibration drift, epochs, recalibration
//!
//! Real chips are recalibrated daily and their error rates drift in
//! between, so the fleet is **live**, not frozen at build:
//!
//! - **Epochs** — every device carries a calibration epoch
//!   ([`DeviceRegistry::epoch`], [`Service::device_epoch`]), bumped on
//!   each calibration-state change. Cached planning probes are valid
//!   for exactly one epoch: a bump drops the bumped device's entries
//!   (only its — invalidation is per device) and emits
//!   [`Event::DeviceRecalibrated`], so the next dispatch re-probes the
//!   *current* calibration. [`CacheInvalidation::Never`] disables the
//!   protocol as the stale-cache ablation the `drift_shootout` bench
//!   quantifies: on a fleet whose quality ordering flips under drift,
//!   epoch-aware invalidation wins delivered EFS/JSD decisively.
//! - **Recalibration** — [`Service::recalibrate`] installs a fresh
//!   [`Calibration`](qucp_device::Calibration) snapshot. Snapshots are
//!   validated first (finite entries, matching qubit count, full link
//!   coverage); a poisoned snapshot is rejected with
//!   [`RuntimeError::InvalidCalibration`] and touches nothing.
//! - **Drift** — [`ServiceBuilder::drift`] attaches a deterministic,
//!   seeded [`DriftModel`] (e.g. [`GaussianWalk`], a log-normal walk on
//!   gate/readout errors and crosstalk gammas with an optional
//!   recalibration-reset cycle); [`Service::advance_drift`] ages every
//!   device to a simulated timestamp, one epoch bump per step that
//!   actually changes values. A zero-sigma walk never bumps an epoch,
//!   so a drift-free service stays **bit-for-bit** the frozen-fleet
//!   runtime (property-tested), and drift itself is a pure function of
//!   `(model, step, device)` — serial == concurrent still holds.
//!
//! ## Scale: the indexed queue and best-k speculation
//!
//! The dispatch loop is built for the paper's heavy-traffic regime
//! (O(100) devices, O(100k) queued jobs), not just the two-chip
//! experiments. Per-operation costs, with `n` pending jobs, `A`
//! admitting devices and `D` fleet devices (the "seed path" column is
//! preserved verbatim behind [`QueueIndexing::Linear`] as the ablation
//! baseline of the `fleet_shootout` bench):
//!
//! | operation | seed path | indexed path (default) |
//! |---|---|---|
//! | submit (queue insert) | O(n) scan + insert | O(log n) position, amortized append for in-order arrivals |
//! | seq → job lookup | O(n) scan | O(1) hash map |
//! | dispatch step: arrived views | O(n) rebuild per candidate | O(log n) prefix bind (O(arrived) flag pass only while per-job strategy overrides are live) |
//! | dispatch step: admitting devices | O(D) filter | O(log D) + A width-bucket suffix |
//! | batch removal | O(n·k) retain | offset bump (front run) or one compaction pass |
//! | recalibrate / drift epoch bump | O(cache) invalidation | unchanged |
//! | batch planning | partition + map + merge per batch | O(1) plan-cache hit ([`PlanMemo::EpochKeyed`], repeat shapes) |
//! | batch execution | one global serial loop | per-group scoped workers ([`DispatchSharding::Grouped`]), merged in batch order |
//!
//! Both paths are observationally equivalent — identical dispatch
//! order, events and reports on any submission/tick interleaving,
//! pinned by the `integration_fleet` equivalence proptest.
//!
//! **Best-k speculative planning** ([`ServiceBuilder::best_k`]) plans
//! the head batch on the top-k routing candidates concurrently. The
//! determinism rule: *the committed winner is always the first
//! candidate in `(score, free time, registration index)` order whose
//! plan succeeds* — exactly the sequential winner; speculation
//! precomputes outcomes, it never reorders them, and a speculative hard
//! error surfaces only when the ranked walk actually reaches its
//! candidate. Losing candidates' probe results stay in the route cache
//! (warming later dispatches), so with `k > 1` the
//! [`RouteCacheStats`] counters may run ahead of the sequential
//! schedule — the only observable difference.
//!
//! ## Campaigns and mid-stream result delivery
//!
//! Iterative applications (VQE, ZNE, SRB) need results *between*
//! submissions, not just in the end-of-run drained report. Two seams
//! serve them:
//!
//! - **Per-ticket retrieval** — [`Service::take_result`] claims a
//!   completed result **exactly once** per ticket: `None` before the
//!   batch runs, the [`JobResult`] on the first call after, `None`
//!   forever after. The caller owns the claimed copy; the service
//!   keeps the canonical result in its O(1) seq-indexed completed
//!   store for the drained [`ServiceReport`], so the report is
//!   **bit-for-bit unchanged** by any claim interleaving (the claim
//!   flag, not eviction, spends the ticket — proptest-pinned).
//!   [`Service::result`] stays the non-consuming peek. Claims are
//!   independent of completion *notifications*: [`Service::tick`]
//!   still reports every completed ticket exactly once.
//! - **The campaign loop** — [`CampaignDriver`] models an application
//!   as a pure function from prior results to the next co-scheduled
//!   batch of [`JobRequest`]s; [`run_campaign`] owns the
//!   generate → submit-batch → await-results → fold loop (arrival
//!   stamping, `+∞` ticks, exactly-once claims, [`CampaignStats`]
//!   accounting). Campaigns inherit the service's serial == concurrent
//!   bit-for-bit determinism; the loop adds no nondeterminism of its
//!   own.
//!
//! Per-job **routing overrides** ([`JobRequest::with_routing`],
//! [`RoutingChoice`]) let a campaign route its measurement circuits by
//! calibration quality on a service whose default is [`EarliestFree`]
//! (or vice versa): the batch head's effective policy routes the whole
//! batch, and an absent (or default-equal) override is bit-for-bit
//! the service default.
//!
//! **Event-log bounding** ([`ServiceBuilder::event_capacity`]): by
//! default the [`EventLog`] retains every event forever (bit-for-bit
//! the historical contract). Under heavy traffic that is O(jobs) live
//! memory, so a capacity bound turns the log into a ring keeping the
//! most recent `capacity` events; dropped events are counted in
//! [`ServiceReport::dropped_events`] and [`EventLog::dropped`].
//! Observers are unaffected either way — they see every event at
//! emission time.
//!
//! The legacy one-shot [`BatchScheduler::run`] survives as a deprecated
//! veneer over `Service` + [`Fifo`] + a single device and reproduces
//! the seed scheduler's output bit-for-bit — the PR-1 equivalence tests
//! pin the redesign.
//!
//! ```
//! use qucp_circuit::library;
//! use qucp_core::strategy;
//! use qucp_device::ibm;
//! use qucp_runtime::{Backfill, JobRequest, Service};
//!
//! # fn main() -> Result<(), qucp_runtime::RuntimeError> {
//! let mut service = Service::builder()
//!     .device(ibm::melbourne())
//!     .device(ibm::toronto())
//!     .strategy(strategy::qucp(4.0))
//!     .policy(Backfill::default())
//!     .max_parallel(2)
//!     .default_shots(256)
//!     .build()?;
//! for i in 0..4 {
//!     let circuit = library::by_name("bell").unwrap().circuit();
//!     let ticket = service.submit(JobRequest::new(circuit, i as f64 * 100.0))?;
//!     assert_eq!(ticket.seq, i);
//! }
//! let report = service.run_until_drained()?;
//! assert_eq!(report.job_results.len(), 4);
//! assert_eq!(report.per_device.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod campaign;
mod event;
mod job;
mod pending;
mod policy;
mod registry;
mod scheduler;
mod service;

pub use campaign::{run_campaign, CampaignDriver, CampaignRun, CampaignStats};
pub use event::{Event, EventLog, EventObserver, ShrinkReason};
pub use job::{skewed_jobs, synthetic_jobs, Job, JobResult};
pub use pending::QueueIndexing;
pub use policy::{AdmissionPolicy, Backfill, BatchBudget, Fifo, JobView, ShortestJobFirst};
pub use registry::{
    CalibrationAware, DeviceId, DeviceRegistry, EarliestFree, RouteQuery, RoutingChoice,
    RoutingPolicy,
};
pub use scheduler::{
    BatchReport, BatchScheduler, CalibrationFault, ExecutionMode, RunReport, RuntimeConfig,
    RuntimeError,
};
pub use service::{
    CacheInvalidation, DeviceReport, DispatchSharding, EfsGate, JobRequest, JobTicket, PlanMemo,
    RouteCacheStats, Service, ServiceBuilder, ServiceReport, MAX_DRIFT_STEPS_PER_ADVANCE,
};

// The shot-parallelism mode travels with the runtime config; re-export
// it so service callers need not depend on `qucp-sim` directly.
pub use qucp_sim::{ShotParallelism, TrajectoryKernel};

// The drift types travel with `ServiceBuilder::drift` /
// `Service::advance_drift`; re-export them so live-fleet callers need
// not depend on `qucp-device` directly.
pub use qucp_device::{DriftEvent, DriftModel, GaussianWalk};
