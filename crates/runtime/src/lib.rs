//! # qucp-runtime
//!
//! A concurrent batch-scheduling runtime that turns the paper's
//! analytical cloud-queue argument (Sec. I/II-A) into an executable
//! system: instead of *modelling* multi-programmed service with
//! abstract durations (`qucp_core::queue::simulate_queue`), it accepts
//! a stream of [`Job`]s — circuit, shots, arrival time — plans every
//! batch through the staged trait pipeline of `qucp-core`, executes the
//! programs of each batch **concurrently** (one thread per program),
//! and reports the same [`QueueStats`](qucp_core::queue::QueueStats)
//! the analytical model emits, so model and runtime can be compared
//! head-to-head.
//!
//! ## Batch lifecycle
//!
//! 1. **Admission** — jobs are served FIFO by arrival time (the IBM
//!    fair-share semantics the paper describes; no reordering). When
//!    the device frees up, the scheduler looks at the queue head.
//! 2. **Sizing** — the co-schedule width for the next batch is the
//!    smallest of: the configured `max_parallel`; the EFS
//!    fidelity-threshold count of
//!    [`parallel_count_for_threshold`](qucp_core::threshold::parallel_count_for_threshold)
//!    (the Fig. 4 throughput/fidelity trade-off, evaluated on the
//!    head-of-line circuit); and what fits the chip qubit-wise.
//! 3. **Planning** — the batch is partitioned, routed, and
//!    schedule-merged by the [`Pipeline`](qucp_core::pipeline::Pipeline)
//!    assembled from the configured [`Strategy`]. If partitioning
//!    cannot place the whole batch, the batch shrinks from the tail
//!    until it fits (the head job alone failing is an error).
//! 4. **Execution** — every program of the planned batch runs on the
//!    pipeline's [`Backend`](qucp_core::pipeline::Backend) in its own
//!    scoped thread ([`std::thread::scope`]). Per-program seeds are
//!    derived from `(batch seed, program index)` only, so concurrent
//!    and serial execution agree **bit-for-bit**
//!    ([`ExecutionMode::Serial`] exists to assert exactly that).
//! 5. **Accounting** — the simulated clock advances by the merged
//!    schedule's makespan (ns); waiting/turnaround/throughput
//!    accumulate exactly as in the analytical model.
//!
//! ```
//! use qucp_circuit::library;
//! use qucp_core::strategy;
//! use qucp_device::ibm;
//! use qucp_runtime::{BatchScheduler, Job, RuntimeConfig};
//!
//! # fn main() -> Result<(), qucp_runtime::RuntimeError> {
//! let jobs: Vec<Job> = (0..4)
//!     .map(|i| Job {
//!         id: i,
//!         circuit: library::by_name("bell").unwrap().circuit(),
//!         shots: 256,
//!         arrival: i as f64 * 100.0,
//!     })
//!     .collect();
//! let scheduler = BatchScheduler::new(
//!     ibm::toronto(),
//!     strategy::qucp(4.0),
//!     RuntimeConfig { max_parallel: 2, ..RuntimeConfig::default() },
//! );
//! let report = scheduler.run(&jobs)?;
//! assert_eq!(report.job_results.len(), 4);
//! assert!(report.stats.batches <= 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod job;
mod scheduler;

pub use job::{synthetic_jobs, Job, JobResult};
pub use scheduler::{
    BatchReport, BatchScheduler, ExecutionMode, RunReport, RuntimeConfig, RuntimeError,
};
