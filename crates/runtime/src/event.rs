//! Telemetry events of the service lifecycle and the observer hook.
//!
//! Every state transition of a [`Service`](crate::Service) — a job
//! entering the queue, a batch being planned or shrunk, a job
//! completing — is recorded as an [`Event`] in the service's
//! [`EventLog`] and fanned out to every registered [`EventObserver`].
//! Timestamps are simulated nanoseconds on the owning device's clock,
//! so a log can be replayed to reconstruct the exact admission
//! decisions (the property tests use this to check the backfill
//! starvation bound).
//!
//! ## Emission order under sharded dispatch
//!
//! A batch's event block (`BatchRouted`, any `BatchShrunk`s,
//! `BatchPlanned`, the `JobCompleted`s) is *buffered at staging time*
//! and emitted contiguously when the batch finishes — always in global
//! batch order, under both
//! [`DispatchSharding`](crate::DispatchSharding) modes. Per-group
//! execution workers therefore never interleave into the log: the
//! sharded event stream is bit-for-bit the single-loop stream, and
//! observers see events exactly once, in that same order.

/// Why a planned batch lost its tail member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShrinkReason {
    /// The partitioner ran out of connected regions for the full batch.
    PartitionFailure,
    /// The heterogeneous EFS gate found a member exceeding its
    /// fidelity-threshold tolerance.
    FidelityGate,
}

/// One service lifecycle transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A job entered the pending queue.
    JobSubmitted {
        /// Effective job id (caller-assigned or service-assigned).
        job_id: u64,
        /// Service-assigned submission index (unique even when job ids
        /// collide).
        seq: usize,
        /// Arrival time (ns).
        arrival: f64,
        /// Logical width of the submitted circuit.
        width: usize,
        /// Effective shot budget.
        shots: usize,
    },
    /// The routing policy chose an admitting device for a batch (the
    /// decision precedes planning; the event is recorded only when the
    /// batch actually commits on that device).
    BatchRouted {
        /// Batch position in global dispatch order.
        batch_index: usize,
        /// Name of the winning device.
        device: String,
        /// Display name of the routing policy that decided.
        policy: String,
        /// The winning candidate's routing score (lower is better: the
        /// device clock under `EarliestFree`, blended
        /// quality-plus-pressure under `CalibrationAware`).
        score: f64,
        /// When the batch can start on the winning device (ns).
        start: f64,
        /// How many admitting candidates competed.
        candidates: usize,
    },
    /// A batch was planned and dispatched to a device.
    BatchPlanned {
        /// Batch position in global dispatch order.
        batch_index: usize,
        /// Name of the device the batch was routed to.
        device: String,
        /// Ids of the members, in program order.
        job_ids: Vec<u64>,
        /// Simulated start time (ns).
        start: f64,
        /// Merged-schedule makespan (ns).
        makespan: f64,
    },
    /// A batch lost its tail member during planning or gating.
    BatchShrunk {
        /// Batch position in global dispatch order.
        batch_index: usize,
        /// Name of the device the batch was being planned for.
        device: String,
        /// Id of the member dropped back into the queue consideration.
        dropped_job_id: u64,
        /// Members remaining after the drop.
        remaining: usize,
        /// What forced the shrink.
        reason: ShrinkReason,
    },
    /// A device's calibration state changed — an explicit
    /// [`Service::recalibrate`](crate::Service::recalibrate), a drift
    /// step that moved values, or a drift-scheduled recalibration
    /// reset. Every such event corresponds to exactly one calibration
    /// **epoch bump** (and, under the default epoch-aware cache mode,
    /// one per-device invalidation of the cross-batch planning cache).
    DeviceRecalibrated {
        /// Name of the device whose calibration changed.
        device: String,
        /// The device's new calibration epoch.
        epoch: u64,
    },
    /// A job's batch finished executing.
    JobCompleted {
        /// Effective job id.
        job_id: u64,
        /// Service-assigned submission index.
        seq: usize,
        /// Batch that carried the job.
        batch_index: usize,
        /// Completion time (ns).
        completion: f64,
        /// Turnaround: completion − arrival (ns).
        turnaround: f64,
    },
}

/// Receives every [`Event`] as it is recorded.
///
/// Closures implement the trait, so wiring telemetry is one line:
///
/// ```
/// use qucp_runtime::{Event, EventObserver};
/// let mut seen = 0usize;
/// let mut counter = |_e: &Event| seen += 1;
/// // `&mut closure` satisfies the bound taken by ServiceBuilder::observer.
/// fn takes_observer(_o: &mut dyn EventObserver) {}
/// takes_observer(&mut counter);
/// ```
pub trait EventObserver: Send {
    /// Called once per event, in dispatch order.
    fn on_event(&mut self, event: &Event);
}

impl<F: FnMut(&Event) + Send> EventObserver for F {
    fn on_event(&mut self, event: &Event) {
        self(event)
    }
}

/// An ordered record of every [`Event`] a service emitted.
///
/// ## Capacity contract
///
/// By default the log is **unbounded**: every event is retained for the
/// service's lifetime, bit-for-bit the original behaviour. Under heavy
/// traffic a 100k-job run would hold 100k+ [`Event::JobCompleted`]
/// entries live, so [`EventLog::with_capacity_limit`] (reachable via
/// [`ServiceBuilder::event_capacity`](crate::ServiceBuilder::event_capacity))
/// turns the log into a ring: at most `capacity` **most-recent** events
/// stay live, older ones are dropped oldest-first and counted in
/// [`EventLog::dropped`]. Observers are unaffected — they see every
/// event at emission time regardless of what the log later retains —
/// and [`EventLog::events`] always returns a contiguous slice in
/// emission order. Pushes stay amortized O(1): the ring is a vector
/// with a dead front that compacts once it reaches half the buffer.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
    /// First live index into `events` (dead prefix below it awaits
    /// compaction).
    start: usize,
    /// Retention bound; `None` = unbounded.
    capacity: Option<usize>,
    /// Events dropped by the retention bound, oldest-first.
    dropped: usize,
}

/// Equality compares the *logical* content (live events, capacity,
/// dropped count), never the ring representation: two logs that
/// recorded the same stream are equal regardless of when each
/// compacted its dead prefix.
impl PartialEq for EventLog {
    fn eq(&self, other: &Self) -> bool {
        self.events() == other.events()
            && self.capacity == other.capacity
            && self.dropped == other.dropped
    }
}

impl EventLog {
    /// An empty, unbounded log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// An empty log retaining at most `capacity` most-recent events
    /// (`None` = unbounded, exactly [`EventLog::new`]).
    pub fn with_capacity_limit(capacity: Option<usize>) -> Self {
        EventLog {
            capacity,
            ..EventLog::default()
        }
    }

    /// The retention bound (`None` = unbounded).
    pub fn capacity_limit(&self) -> Option<usize> {
        self.capacity
    }

    /// How many events the retention bound has dropped (always 0 on an
    /// unbounded log).
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Appends an event, evicting the oldest live one when the
    /// retention bound is full.
    pub fn push(&mut self, event: Event) {
        match self.capacity {
            None => self.events.push(event),
            Some(0) => self.dropped += 1,
            Some(cap) => {
                self.events.push(event);
                let live = self.events.len() - self.start;
                if live > cap {
                    self.start += live - cap;
                    self.dropped += live - cap;
                }
                // Compact once the dead prefix reaches half the buffer:
                // each element is drained at most once, so pushes stay
                // amortized O(1) and memory stays within 2 × capacity.
                if self.start > 0 && self.start * 2 >= self.events.len() {
                    self.events.drain(..self.start);
                    self.start = 0;
                }
            }
        }
    }

    /// All live events, in emission order (everything ever recorded on
    /// an unbounded log; the most recent `capacity` under a bound).
    pub fn events(&self) -> &[Event] {
        &self.events[self.start..]
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.events.len() - self.start
    }

    /// Whether nothing is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of all submitted jobs, in submission order.
    pub fn submitted_ids(&self) -> Vec<u64> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                Event::JobSubmitted { job_id, .. } => Some(*job_id),
                _ => None,
            })
            .collect()
    }

    /// Ids of all completed jobs, in completion order.
    pub fn completed_ids(&self) -> Vec<u64> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                Event::JobCompleted { job_id, .. } => Some(*job_id),
                _ => None,
            })
            .collect()
    }

    /// The planned batches as `(device, member ids)` pairs, in dispatch
    /// order.
    pub fn planned_batches(&self) -> Vec<(&str, &[u64])> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                Event::BatchPlanned {
                    device, job_ids, ..
                } => Some((device.as_str(), job_ids.as_slice())),
                _ => None,
            })
            .collect()
    }

    /// The routing decisions as `(device, winning score)` pairs, in
    /// dispatch order.
    pub fn routed(&self) -> Vec<(&str, f64)> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                Event::BatchRouted { device, score, .. } => Some((device.as_str(), *score)),
                _ => None,
            })
            .collect()
    }

    /// The calibration-state changes as `(device, new epoch)` pairs, in
    /// emission order.
    pub fn recalibrations(&self) -> Vec<(&str, u64)> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                Event::DeviceRecalibrated { device, epoch } => Some((device.as_str(), *epoch)),
                _ => None,
            })
            .collect()
    }

    /// How many shrink events were recorded for `reason`.
    pub fn shrink_count(&self, reason: ShrinkReason) -> usize {
        self.events()
            .iter()
            .filter(|e| matches!(e, Event::BatchShrunk { reason: r, .. } if *r == reason))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_accumulates_and_queries() {
        let mut log = EventLog::new();
        assert!(log.is_empty());
        log.push(Event::JobSubmitted {
            job_id: 3,
            seq: 0,
            arrival: 0.0,
            width: 2,
            shots: 64,
        });
        log.push(Event::BatchRouted {
            batch_index: 0,
            device: "d".into(),
            policy: "EarliestFree".into(),
            score: 0.0,
            start: 0.0,
            candidates: 1,
        });
        log.push(Event::BatchPlanned {
            batch_index: 0,
            device: "d".into(),
            job_ids: vec![3],
            start: 0.0,
            makespan: 10.0,
        });
        log.push(Event::JobCompleted {
            job_id: 3,
            seq: 0,
            batch_index: 0,
            completion: 10.0,
            turnaround: 10.0,
        });
        assert_eq!(log.len(), 4);
        assert_eq!(log.submitted_ids(), vec![3]);
        assert_eq!(log.completed_ids(), vec![3]);
        assert_eq!(log.planned_batches(), vec![("d", &[3u64][..])]);
        assert_eq!(log.routed(), vec![("d", 0.0)]);
        assert_eq!(log.shrink_count(ShrinkReason::PartitionFailure), 0);
    }

    #[test]
    fn closures_observe() {
        let mut count = 0usize;
        {
            let mut obs = |_: &Event| count += 1;
            let o: &mut dyn EventObserver = &mut obs;
            o.on_event(&Event::JobCompleted {
                job_id: 0,
                seq: 0,
                batch_index: 0,
                completion: 1.0,
                turnaround: 1.0,
            });
        }
        assert_eq!(count, 1);
    }
}
