//! The device registry: the set of chips one service dispatches across.
//!
//! The paper's queue argument is told for a single device; a cloud
//! provider runs many. A [`DeviceRegistry`] holds the static fleet —
//! per-device *runtime* state (clocks, busy accounting,
//! [`QueueStats`](qucp_core::queue::QueueStats)) lives inside the
//! [`Service`](crate::Service), which routes every batch to the
//! earliest-free device whose topology admits the batch head
//! (registration order breaks ties, so routing is deterministic).

use qucp_device::Device;

/// Opaque handle of a registered device (its registration index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(usize);

impl DeviceId {
    /// The registration index the id wraps.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An ordered fleet of devices.
///
/// ```
/// use qucp_device::ibm;
/// use qucp_runtime::DeviceRegistry;
///
/// let mut fleet = DeviceRegistry::new();
/// let toronto = fleet.register(ibm::toronto());
/// let melbourne = fleet.register(ibm::melbourne());
/// assert_eq!(fleet.len(), 2);
/// assert_eq!(fleet.get(toronto).num_qubits(), 27);
/// // A 20-qubit program only fits Toronto.
/// let admitting: Vec<_> = fleet.admitting(20).collect();
/// assert_eq!(admitting, vec![toronto]);
/// assert_ne!(toronto, melbourne);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceRegistry {
    devices: Vec<Device>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// A registry holding a single device (the legacy wrapper's case).
    pub fn single(device: Device) -> Self {
        DeviceRegistry {
            devices: vec![device],
        }
    }

    /// Adds a device; later registrations lose routing ties.
    pub fn register(&mut self, device: Device) -> DeviceId {
        self.devices.push(device);
        DeviceId(self.devices.len() - 1)
    }

    /// Internal positional access for the service dispatch loop, which
    /// keys per-device runtime state by registration index.
    pub(crate) fn device_at(&self, index: usize) -> &Device {
        &self.devices[index]
    }

    /// The device behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different registry and is out of
    /// range.
    pub fn get(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Ids and devices in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i), d))
    }

    /// Ids of the devices whose topology admits a `width`-qubit
    /// program, in registration order.
    pub fn admitting(&self, width: usize) -> impl Iterator<Item = DeviceId> + '_ {
        self.iter()
            .filter(move |(_, d)| d.admits(width))
            .map(|(id, _)| id)
    }

    /// The registered device with the most qubits (`None` when empty) —
    /// the honest place to surface a "does not fit anywhere" planning
    /// error.
    pub fn widest(&self) -> Option<DeviceId> {
        let mut best: Option<usize> = None;
        for (i, d) in self.devices.iter().enumerate() {
            // Strict comparison: the earliest registration wins ties,
            // consistent with the routing rule.
            if best.is_none_or(|b| d.num_qubits() > self.devices[b].num_qubits()) {
                best = Some(i);
            }
        }
        best.map(DeviceId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::ibm;

    #[test]
    fn routing_queries_are_deterministic() {
        let mut fleet = DeviceRegistry::new();
        assert!(fleet.is_empty());
        assert_eq!(fleet.widest(), None);
        let mel = fleet.register(ibm::melbourne());
        let tor = fleet.register(ibm::toronto());
        let man = fleet.register(ibm::manhattan());
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.widest(), Some(man));
        // A 14-qubit job fits everything, in registration order.
        assert_eq!(fleet.admitting(14).collect::<Vec<_>>(), vec![mel, tor, man]);
        // A 40-qubit job only fits Manhattan (65q).
        assert_eq!(fleet.admitting(40).collect::<Vec<_>>(), vec![man]);
        assert_eq!(fleet.admitting(99).count(), 0);
        assert_eq!(fleet.get(tor).name(), ibm::toronto().name());
        assert_eq!(fleet.iter().count(), 3);
    }
}
