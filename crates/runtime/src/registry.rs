//! The device registry and the routing-policy seam: which chip of the
//! fleet a batch is dispatched to.
//!
//! The paper's queue argument is told for a single device; a cloud
//! provider runs many — and their calibrations differ by integer
//! factors day to day. A [`DeviceRegistry`] holds the static fleet;
//! per-device *runtime* state (clocks, busy accounting,
//! [`QueueStats`](qucp_core::queue::QueueStats)) lives inside the
//! [`Service`](crate::Service), which asks a pluggable
//! [`RoutingPolicy`] to rank the admitting candidates for every batch:
//!
//! - [`EarliestFree`] (the default) scores a candidate by its clock —
//!   bit-for-bit the pre-seam dispatch rule (earliest-free device,
//!   registration order breaks ties), pinned by the service
//!   equivalence suite.
//! - [`CalibrationAware`] scores a candidate by the head circuit's
//!   solo-best EFS partition score on that chip (probed through the
//!   service's cross-batch cache; a chip with no placement for the
//!   head ranks last), blended with queue pressure: each nanosecond of
//!   extra wait over the earliest-free choice costs
//!   [`CalibrationAware::pressure_per_ns`] EFS units. A well-calibrated
//!   chip therefore wins until its backlog outweighs its quality edge.
//!   Probe-free custom policies can rank chips with the cheap
//!   [`Calibration::error_mass`](qucp_device::Calibration::error_mass)
//!   × mean-crosstalk aggregates instead.
//!
//! Scores are compared with `total_cmp` and ties always fall back to
//! the earliest-free order (free time, then registration index), so
//! routing stays deterministic for any policy — even one that returns
//! NaN: the comparison stays total (positive NaN sorts after `+∞`,
//! negative before `−∞`) and never panics.
//!
//! ## Calibration epochs and cross-batch caching
//!
//! Two kinds of planning work are memoized across batches, both pure
//! functions of calibration state:
//!
//! - **Probe entries** — the partition probes behind
//!   [`CalibrationAware`] and the head-only EFS gate, keyed by
//!   *(device, circuit shape, partition policy[, threshold])*. A
//!   stream of same-shape jobs pays the candidate growth once per chip
//!   instead of once per batch.
//! - **Plan entries** — entire committed batch plans (the
//!   [`PlannedWorkload`](qucp_core::pipeline::PlannedWorkload) plus its
//!   eviction trace), keyed by *(device **epoch**, ordered member
//!   shape fingerprints, effective strategy, gate mode/threshold
//!   bits)*. A hit replays the cached plan clone-free and skips
//!   partitioning, mapping and merging entirely (see
//!   [`PlanMemo`](crate::PlanMemo)).
//!
//! The fleet is *live*: calibrations mutate after build, through
//! [`Service::recalibrate`](crate::Service::recalibrate) (a fresh
//! snapshot arrives) or
//! [`Service::advance_drift`](crate::Service::advance_drift) (a
//! [`DriftModel`](qucp_device::DriftModel) ages them in simulated
//! time). Every mutation that actually changes a device's calibration
//! state bumps that device's **calibration epoch** — a monotone
//! per-device counter readable via [`DeviceRegistry::epoch`].
//!
//! **Invalidation rules:** cached entries of *both* kinds are valid
//! for exactly one epoch of their device. On an epoch bump the service
//! drops every probe *and* plan entry keyed by that device (other
//! devices' entries survive — invalidation is per device, never
//! fleet-wide) and emits
//! [`Event::DeviceRecalibrated`](crate::Event::DeviceRecalibrated), so
//! the next dispatch re-probes and re-plans against the *current*
//! calibration. While a device's epoch stays put its entries stay
//! valid indefinitely — a frozen fleet (no drift model, no
//! recalibration calls) therefore behaves exactly like the
//! pre-live-fleet runtime: epochs stay 0 and entries never invalidate.
//! The two kinds differ in one deliberate way: probe entries are keyed
//! by device *index* and dropped eagerly on the bump, while plan
//! entries carry the epoch **inside their key**, so a stale plan can
//! never replay even under
//! [`CacheInvalidation::Never`](crate::CacheInvalidation::Never) — for
//! plans the eager drop is garbage collection, not correctness.
//! Invalidations of both kinds are observable via
//! [`Service::route_cache_stats`](crate::Service::route_cache_stats)
//! (`invalidated` / `plan_invalidated`), and
//! [`CacheInvalidation::Never`](crate::CacheInvalidation::Never)
//! disables the drop protocol as an ablation (stale-cache *routing*,
//! the baseline the `drift_shootout` bench beats — plan replay stays
//! calibration-correct regardless, per the epoch-in-key rule above).
//!
//! ## Device groups and sharded dispatch
//!
//! Each device belongs to a **dispatch group** (default: group 0).
//! Groups are the unit of execution parallelism under
//! [`DispatchSharding::Grouped`](crate::DispatchSharding): staged
//! batches are executed by one scoped worker per group, then merged
//! back in global batch order, so the sharded schedule is bit-for-bit
//! the serial one. Assign groups at build time via
//! [`ServiceBuilder::device_groups`](crate::ServiceBuilder::device_groups)
//! (round-robin) or per device with [`DeviceRegistry::set_group`].

use std::fmt;

use qucp_device::{Calibration, CrosstalkModel, Device};

/// Opaque handle of a registered device (its registration index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(usize);

impl DeviceId {
    /// The registration index the id wraps.
    pub fn index(self) -> usize {
        self.0
    }

    /// Internal constructor for the service dispatch loop, which keys
    /// per-device runtime state by registration index.
    pub(crate) fn from_index(index: usize) -> Self {
        DeviceId(index)
    }
}

/// An ordered fleet of devices.
///
/// ```
/// use qucp_device::ibm;
/// use qucp_runtime::DeviceRegistry;
///
/// let mut fleet = DeviceRegistry::new();
/// let toronto = fleet.register(ibm::toronto());
/// let melbourne = fleet.register(ibm::melbourne());
/// assert_eq!(fleet.len(), 2);
/// assert_eq!(fleet.get(toronto).num_qubits(), 27);
/// // A 20-qubit program only fits Toronto.
/// let admitting: Vec<_> = fleet.admitting(20).collect();
/// assert_eq!(admitting, vec![toronto]);
/// assert_ne!(toronto, melbourne);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceRegistry {
    devices: Vec<Device>,
    /// Per-device calibration epoch: bumped on every calibration-state
    /// mutation, parallel to `devices`.
    epochs: Vec<u64>,
    /// Width index: `(num_qubits, registration index)` sorted
    /// ascending, so the devices admitting a width are a suffix —
    /// [`DeviceRegistry::admitting`] and the dispatch loop stop
    /// scanning non-candidates. Qubit counts are fixed at registration
    /// (recalibration never resizes a chip), so the index never goes
    /// stale.
    by_width: Vec<(usize, usize)>,
    /// Per-device dispatch group, parallel to `devices`; every device
    /// starts in group 0. Groups never influence scheduling decisions —
    /// only which scoped worker executes a staged batch under
    /// [`DispatchSharding::Grouped`](crate::DispatchSharding).
    groups: Vec<usize>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// A registry holding a single device (the legacy wrapper's case).
    pub fn single(device: Device) -> Self {
        let width = device.num_qubits();
        DeviceRegistry {
            devices: vec![device],
            epochs: vec![0],
            by_width: vec![(width, 0)],
            groups: vec![0],
        }
    }

    /// Adds a device; later registrations lose routing ties. The new
    /// device starts at calibration epoch 0.
    pub fn register(&mut self, device: Device) -> DeviceId {
        let index = self.devices.len();
        let entry = (device.num_qubits(), index);
        let pos = self.by_width.partition_point(|&e| e < entry);
        self.by_width.insert(pos, entry);
        self.devices.push(device);
        self.epochs.push(0);
        self.groups.push(0);
        DeviceId(index)
    }

    /// The device's dispatch group (0 unless assigned).
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different registry and is out of
    /// range.
    pub fn group(&self, id: DeviceId) -> usize {
        self.groups[id.0]
    }

    /// Assigns the device to a dispatch group. Groups partition
    /// *execution* only — scheduling decisions (admission, routing,
    /// planning) are group-blind, which is what keeps
    /// [`DispatchSharding::Grouped`](crate::DispatchSharding)
    /// bit-identical to the single loop.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different registry and is out of
    /// range.
    pub fn set_group(&mut self, id: DeviceId, group: usize) {
        self.groups[id.0] = group;
    }

    /// The number of distinct dispatch groups in use (1 for a fleet
    /// that never assigned groups — every device in group 0; 0 for an
    /// empty registry).
    pub fn group_count(&self) -> usize {
        let mut seen: Vec<usize> = self.groups.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Spreads the fleet across `n` dispatch groups round-robin by
    /// registration index (device `i` joins group `i % n`). `n` is
    /// clamped to at least 1.
    pub fn assign_groups_round_robin(&mut self, n: usize) {
        let n = n.max(1);
        for (i, group) in self.groups.iter_mut().enumerate() {
            *group = i % n;
        }
    }

    /// The dispatch group of the device at a registration index — the
    /// dispatch loop's internal indexed accessor.
    pub(crate) fn group_of(&self, index: usize) -> usize {
        self.groups[index]
    }

    /// The device's calibration epoch: 0 at registration, bumped once
    /// per calibration-state mutation ([`DeviceRegistry::recalibrate`]
    /// or a changing [`DeviceRegistry::mutate_calibration`]). Cached
    /// planning probes are valid for exactly one epoch.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different registry and is out of
    /// range.
    pub fn epoch(&self, id: DeviceId) -> u64 {
        self.epochs[id.0]
    }

    /// Replaces the device's calibration snapshot wholesale, bumps its
    /// epoch unconditionally (a fresh snapshot is fresh information
    /// even when numerically identical) and returns the new epoch.
    ///
    /// This is the raw swap: callers wanting validation (finite
    /// entries, topology coverage) and cache invalidation should go
    /// through [`Service::recalibrate`](crate::Service::recalibrate).
    ///
    /// # Panics
    ///
    /// Panics if the calibration's qubit count does not match the
    /// device or if `id` is out of range.
    pub fn recalibrate(&mut self, id: DeviceId, calibration: Calibration) -> u64 {
        let device = &mut self.devices[id.0];
        assert_eq!(
            calibration.num_qubits(),
            device.num_qubits(),
            "calibration does not match device"
        );
        *device.calibration_mut() = calibration;
        self.epochs[id.0] += 1;
        self.epochs[id.0]
    }

    /// Mutates a device's calibration state in place through `f`,
    /// bumping the epoch **iff** `f` reports a change; returns the new
    /// epoch when bumped. Drift models plug in here: a no-op step
    /// (zero sigmas, or a recalibration reset of an undrifted device)
    /// must not bump the epoch, or frozen-fleet equivalence would pay
    /// phantom cache invalidations.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn mutate_calibration(
        &mut self,
        id: DeviceId,
        f: impl FnOnce(&mut Calibration, &mut CrosstalkModel) -> bool,
    ) -> Option<u64> {
        let device = &mut self.devices[id.0];
        let (cal, xt) = device.calibration_state_mut();
        let changed = f(cal, xt);
        if changed {
            self.epochs[id.0] += 1;
            Some(self.epochs[id.0])
        } else {
            None
        }
    }

    /// Internal positional access for the service dispatch loop, which
    /// keys per-device runtime state by registration index.
    pub(crate) fn device_at(&self, index: usize) -> &Device {
        &self.devices[index]
    }

    /// The device behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different registry and is out of
    /// range.
    pub fn get(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Ids and devices in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i), d))
    }

    /// Ids of the devices whose topology admits a `width`-qubit
    /// program, in registration order. Served from the width index —
    /// one binary search plus the candidates themselves, never a scan
    /// over non-admitting devices.
    pub fn admitting(&self, width: usize) -> impl Iterator<Item = DeviceId> + '_ {
        let mut ids: Vec<usize> = self
            .admitting_bucket(width)
            .iter()
            .map(|&(_, index)| index)
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(DeviceId)
    }

    /// The width-index suffix of `(num_qubits, registration index)`
    /// entries admitting a `width`-qubit program, sorted by qubit count
    /// then registration index — **not** registration order. The
    /// dispatch loop consumes this raw bucket because it re-ranks
    /// candidates by `(score, free time, registration index)` anyway;
    /// order-sensitive callers go through
    /// [`DeviceRegistry::admitting`].
    pub(crate) fn admitting_bucket(&self, width: usize) -> &[(usize, usize)] {
        if width == 0 {
            // `Device::admits` rejects zero-width programs; the index
            // suffix for width 0 would be every device.
            return &[];
        }
        let start = self.by_width.partition_point(|&(q, _)| q < width);
        &self.by_width[start..]
    }

    /// The registered device with the most qubits (`None` when empty) —
    /// the honest place to surface a "does not fit anywhere" planning
    /// error. Ties keep the earliest registration, consistent with the
    /// routing rule.
    pub fn widest(&self) -> Option<DeviceId> {
        let &(max_qubits, _) = self.by_width.last()?;
        let start = self.by_width.partition_point(|&(q, _)| q < max_qubits);
        // The max-qubit run is sorted by registration index; its first
        // entry is the earliest registration.
        Some(DeviceId(self.by_width[start].1))
    }
}

/// What a routing policy may know about one admitting candidate when a
/// batch is dispatched.
#[derive(Debug, Clone, Copy)]
pub struct RouteQuery<'a> {
    /// The candidate device.
    pub device: &'a Device,
    /// Registration index (the deterministic final tie-breaker).
    pub device_index: usize,
    /// When the candidate frees up (its clock, ns).
    pub free_at: f64,
    /// Earliest start of the batch head on this candidate:
    /// `max(free_at, head arrival)`.
    pub start: f64,
    /// The earliest `start` among all admitting candidates — the
    /// queue-pressure baseline: `start - best_start` is the extra wait
    /// this candidate costs over the earliest-free choice.
    pub best_start: f64,
    /// Logical width of the head circuit.
    pub head_width: usize,
    /// CNOT count of the head circuit.
    pub head_cx_count: usize,
    /// Solo-best EFS partition score of the head circuit on this
    /// candidate (lower is better), served from the service's
    /// cross-batch cache. `None` when the policy did not request it
    /// ([`RoutingPolicy::wants_partition_score`]) or when the probe
    /// found no placement on this chip.
    pub partition_score: Option<f64>,
}

/// Ranks the admitting devices of the fleet for one batch dispatch.
///
/// Implementations must be deterministic pure functions of the query —
/// the service's bit-for-bit reproducibility guarantee rests on it.
/// Scores are compared with `total_cmp`; ties (and NaN, which sorts
/// last) fall back to earliest-free order.
pub trait RoutingPolicy: Send + Sync + fmt::Debug {
    /// Display name (reports, telemetry events, benches).
    fn name(&self) -> &str;

    /// Whether the service should probe (and cache) the head circuit's
    /// solo-best partition score on every candidate before scoring.
    /// Defaults to `false`: the probe costs a candidate growth per
    /// (device, circuit shape) on first sight.
    fn wants_partition_score(&self) -> bool {
        false
    }

    /// Scores one admitting candidate; **lower is better**.
    fn score(&self, query: &RouteQuery<'_>) -> f64;
}

/// The pre-seam dispatch rule: route to the earliest-free admitting
/// device, registration order breaking ties. Calibration-blind; kept as
/// the default and pinned bit-for-bit by the service equivalence suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EarliestFree;

impl RoutingPolicy for EarliestFree {
    fn name(&self) -> &str {
        "EarliestFree"
    }

    fn score(&self, query: &RouteQuery<'_>) -> f64 {
        query.free_at
    }
}

/// Calibration-quality routing: prefer the chip where the head circuit
/// keeps the most fidelity, unless the backlog there outweighs the
/// quality edge.
///
/// The score is `quality + pressure_per_ns · (start − best_start)`,
/// where `quality` is the head's solo-best EFS partition score on the
/// candidate (the same Eq.-1 metric that drives partitioning, probed
/// through the service's cross-batch cache) and the pressure term
/// converts extra waiting into EFS units. A candidate whose probe found
/// **no placement** for the head scores `f64::INFINITY`: a planning
/// attempt there can only refail with the same `PartitionUnavailable`
/// the probe saw, so every placeable chip is tried first (the
/// unplaceable ones stay last-resort, preserving the precise
/// error-surfacing when *nothing* can place the job). Probe-free
/// custom policies can rank chips with the cheap
/// [`Calibration::error_mass`](qucp_device::Calibration::error_mass) ×
/// [`CrosstalkModel::mean_gamma`](qucp_device::CrosstalkModel::mean_gamma)
/// aggregates instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationAware {
    /// EFS units one nanosecond of extra wait costs (relative to the
    /// earliest-free candidate). `0.0` routes purely by quality;
    /// `f64::INFINITY` restricts the choice to the earliest-starting
    /// candidates, quality (then the earliest-free tie-break) deciding
    /// among them.
    pub pressure_per_ns: f64,
}

impl CalibrationAware {
    /// Default queue-pressure weight: 2×10⁻⁶ EFS per ns, i.e. a chip
    /// must be ~0.1 EFS better to justify ~50 µs of extra queueing —
    /// the right order for the few-hundred-ns gate times and 10⁴–10⁵ ns
    /// batch makespans of the modeled IBM chips.
    pub const DEFAULT_PRESSURE_PER_NS: f64 = 2e-6;
}

impl Default for CalibrationAware {
    fn default() -> Self {
        CalibrationAware {
            pressure_per_ns: Self::DEFAULT_PRESSURE_PER_NS,
        }
    }
}

impl RoutingPolicy for CalibrationAware {
    fn name(&self) -> &str {
        "CalibrationAware"
    }

    fn wants_partition_score(&self) -> bool {
        true
    }

    fn score(&self, query: &RouteQuery<'_>) -> f64 {
        // This policy always requests probes, so an absent score means
        // the probe found no placement for the head on this chip —
        // rank it behind every placeable candidate (planning there
        // could only refail with the probe's PartitionUnavailable).
        let Some(quality) = query.partition_score else {
            return f64::INFINITY;
        };
        let wait = query.start - query.best_start;
        // Charged only for a strictly positive wait: `pressure_per_ns *
        // 0.0` would turn an infinite weight into NaN for the very
        // candidate the degenerate mode is meant to prefer.
        if wait > 0.0 {
            quality + self.pressure_per_ns * wait
        } else {
            quality
        }
    }
}

/// A per-job routing-policy override, carried on a
/// [`JobRequest`](crate::JobRequest).
///
/// The service routes every batch with its configured
/// [`RoutingPolicy`]; a campaign that wants quality-routed measurement
/// circuits on a service whose default is [`EarliestFree`] (or vice
/// versa) can override the policy for the batches *it* heads. The
/// override is a closed enum of the built-in policies — not a boxed
/// trait object — so requests stay `Clone + PartialEq` and
/// wire-encodable through the daemon protocol.
///
/// Semantics: the override of the batch **head** routes the whole
/// batch (riders' overrides are ignored, exactly like the head's
/// strategy governs batch planning). A request without an override
/// routes with the service default, bit-for-bit — and an explicit
/// override equal to the service default is observationally identical
/// to no override (pinned by the campaign test suite).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingChoice {
    /// Route to the earliest-free admitting device ([`EarliestFree`]).
    EarliestFree,
    /// Route by calibration quality blended with queue pressure
    /// ([`CalibrationAware`]).
    CalibrationAware {
        /// EFS units one nanosecond of extra wait costs (see
        /// [`CalibrationAware::pressure_per_ns`]).
        pressure_per_ns: f64,
    },
}

impl RoutingPolicy for RoutingChoice {
    fn name(&self) -> &str {
        match self {
            RoutingChoice::EarliestFree => EarliestFree.name(),
            RoutingChoice::CalibrationAware { .. } => "CalibrationAware",
        }
    }

    fn wants_partition_score(&self) -> bool {
        match self {
            RoutingChoice::EarliestFree => EarliestFree.wants_partition_score(),
            RoutingChoice::CalibrationAware { pressure_per_ns } => CalibrationAware {
                pressure_per_ns: *pressure_per_ns,
            }
            .wants_partition_score(),
        }
    }

    fn score(&self, query: &RouteQuery<'_>) -> f64 {
        match self {
            RoutingChoice::EarliestFree => EarliestFree.score(query),
            RoutingChoice::CalibrationAware { pressure_per_ns } => CalibrationAware {
                pressure_per_ns: *pressure_per_ns,
            }
            .score(query),
        }
    }
}

/// A keyed priority index over the fleet's device clocks: answers "the
/// earliest-free device" in O(log D) instead of the O(D) min scan the
/// dispatch loop used to run per batch.
///
/// Keys are device clocks mapped through the standard total-order bit
/// trick, so the ordering is exactly `f64::total_cmp` — including the
/// `-0.0 < +0.0` edge — and ties break on the registration index,
/// matching the linear scan's first-strict-minimum rule bit-for-bit.
/// The index lives behind the same seam as the pending queue
/// ([`QueueIndexing`](crate::QueueIndexing)): the `Indexed` path keeps
/// one, the `Linear` ablation path keeps the seed scan, and the
/// `integration_fleet` equivalence proptests pin both paths to
/// identical observable behaviour.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClockIndex {
    /// `(total-order key of clock, device index)`, ascending.
    set: std::collections::BTreeSet<(u64, usize)>,
}

/// Maps a float to a `u64` whose unsigned order is `total_cmp` order.
fn total_order_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

impl ClockIndex {
    /// An index over `devices` clocks, all starting at `0.0`.
    pub(crate) fn new(devices: usize) -> Self {
        ClockIndex {
            set: (0..devices).map(|d| (total_order_key(0.0), d)).collect(),
        }
    }

    /// Re-keys `device` from clock `old` to clock `new`.
    pub(crate) fn update(&mut self, device: usize, old: f64, new: f64) {
        let removed = self.set.remove(&(total_order_key(old), device));
        debug_assert!(removed, "clock index lost device {device}");
        self.set.insert((total_order_key(new), device));
    }

    /// The device with the smallest clock (smallest registration index
    /// among ties) — the linear scan's answer.
    pub(crate) fn min_device(&self) -> usize {
        self.set
            .first()
            .expect("clock index over a non-empty fleet")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::ibm;

    #[test]
    fn routing_queries_are_deterministic() {
        let mut fleet = DeviceRegistry::new();
        assert!(fleet.is_empty());
        assert_eq!(fleet.widest(), None);
        let mel = fleet.register(ibm::melbourne());
        let tor = fleet.register(ibm::toronto());
        let man = fleet.register(ibm::manhattan());
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.widest(), Some(man));
        // A 14-qubit job fits everything, in registration order.
        assert_eq!(fleet.admitting(14).collect::<Vec<_>>(), vec![mel, tor, man]);
        // A 40-qubit job only fits Manhattan (65q).
        assert_eq!(fleet.admitting(40).collect::<Vec<_>>(), vec![man]);
        assert_eq!(fleet.admitting(99).count(), 0);
        assert_eq!(fleet.get(tor).name(), ibm::toronto().name());
        assert_eq!(fleet.iter().count(), 3);
    }

    #[test]
    fn epochs_bump_on_calibration_mutation_only() {
        let mut fleet = DeviceRegistry::new();
        let tor = fleet.register(ibm::toronto());
        let mel = fleet.register(ibm::melbourne());
        assert_eq!(fleet.epoch(tor), 0);
        assert_eq!(fleet.epoch(mel), 0);
        // A no-op mutation must not bump.
        assert_eq!(fleet.mutate_calibration(tor, |_, _| false), None);
        assert_eq!(fleet.epoch(tor), 0);
        // A changing mutation bumps only the touched device.
        let bumped = fleet.mutate_calibration(tor, |cal, _| {
            cal.set_readout_error(0, 0.3);
            true
        });
        assert_eq!(bumped, Some(1));
        assert_eq!(fleet.epoch(tor), 1);
        assert_eq!(fleet.epoch(mel), 0);
        assert_eq!(fleet.get(tor).calibration().readout_error(0), 0.3);
        // A wholesale recalibration bumps unconditionally.
        let fresh = fleet.get(tor).calibration().clone();
        assert_eq!(fleet.recalibrate(tor, fresh), 2);
        assert_eq!(fleet.epoch(tor), 2);
    }

    #[test]
    #[should_panic(expected = "calibration does not match device")]
    fn mismatched_recalibration_panics_at_registry_level() {
        let mut fleet = DeviceRegistry::new();
        let tor = fleet.register(ibm::toronto());
        let wrong = ibm::melbourne().calibration().clone();
        fleet.recalibrate(tor, wrong);
    }

    fn query(device: &Device, free_at: f64, start: f64, score: Option<f64>) -> RouteQuery<'_> {
        RouteQuery {
            device,
            device_index: 0,
            free_at,
            start,
            best_start: 100.0,
            head_width: 3,
            head_cx_count: 10,
            partition_score: score,
        }
    }

    #[test]
    fn earliest_free_scores_by_clock_only() {
        let dev = ibm::toronto();
        let policy = EarliestFree;
        assert!(!policy.wants_partition_score());
        assert_eq!(policy.score(&query(&dev, 7.0, 100.0, Some(0.9))), 7.0);
        assert_eq!(policy.score(&query(&dev, 0.0, 500.0, None)), 0.0);
    }

    #[test]
    fn calibration_aware_blends_quality_and_pressure() {
        let dev = ibm::toronto();
        let policy = CalibrationAware {
            pressure_per_ns: 1e-3,
        };
        assert!(policy.wants_partition_score());
        // At the earliest-free start, the score is pure quality.
        let base = policy.score(&query(&dev, 0.0, 100.0, Some(0.25)));
        assert!((base - 0.25).abs() < 1e-12);
        // Every ns past the best start costs pressure_per_ns.
        let pressured = policy.score(&query(&dev, 0.0, 300.0, Some(0.25)));
        assert!((pressured - (0.25 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn infinite_pressure_degenerates_to_earliest_start() {
        // INF · 0 would be NaN: the earliest-start candidate must keep
        // its finite quality score while every later start scores +∞.
        let dev = ibm::toronto();
        let policy = CalibrationAware {
            pressure_per_ns: f64::INFINITY,
        };
        let at_best_start = policy.score(&query(&dev, 0.0, 100.0, Some(0.3)));
        assert_eq!(at_best_start, 0.3);
        assert_eq!(
            policy.score(&query(&dev, 0.0, 100.5, Some(0.3))),
            f64::INFINITY
        );
    }

    #[test]
    fn calibration_aware_ranks_unplaceable_chips_last() {
        // An absent partition score means "probed, no placement": the
        // chip must lose to any placeable candidate, however bad its
        // calibration — planning there could only refail.
        let dev = ibm::toronto();
        let policy = CalibrationAware::default();
        assert_eq!(policy.score(&query(&dev, 0.0, 100.0, None)), f64::INFINITY);
        let terrible_but_placeable = policy.score(&query(&dev, 0.0, 100.0, Some(1e6)));
        assert!(terrible_but_placeable < f64::INFINITY);
    }
}
