//! Jobs entering the batch scheduler and their per-job outcomes.

use qucp_circuit::{library, Circuit};
use qucp_core::ProgramResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One user job: a circuit to execute with a shot budget, arriving at a
/// given time.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Caller-assigned identifier (reported back in [`JobResult`]).
    pub id: u64,
    /// The logical circuit to run.
    pub circuit: Circuit,
    /// Measurement shots requested.
    pub shots: usize,
    /// Arrival time in nanoseconds (same unit as schedule makespans).
    pub arrival: f64,
}

/// The outcome of one job after its batch executed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The job's identifier.
    pub job_id: u64,
    /// Index of the batch that carried the job.
    pub batch_index: usize,
    /// Time the job's batch started (ns).
    pub start: f64,
    /// Time the job's batch completed (ns).
    pub completion: f64,
    /// Waiting time: start − arrival (ns).
    pub waiting: f64,
    /// Turnaround: completion − arrival (ns).
    pub turnaround: f64,
    /// The scored execution result (counts, PST, JSD, partition, EFS).
    pub result: ProgramResult,
}

/// Generates a deterministic synthetic job stream from the paper's
/// benchmark library: `n` small circuits arriving in a burst, with
/// inter-arrival gaps of 0–`gap_ns` nanoseconds.
///
/// The circuits cycle through the small (3–5 qubit) library benchmarks
/// so several consecutive jobs pack onto a 27-qubit chip.
pub fn synthetic_jobs(n: usize, gap_ns: f64, shots: usize, seed: u64) -> Vec<Job> {
    const NAMES: [&str; 6] = [
        "bell",
        "fredkin",
        "linearsolver",
        "variation",
        "alu-v0_27",
        "qec",
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            t += rng.gen_range(0.0..gap_ns.max(f64::MIN_POSITIVE));
            let name = NAMES[i % NAMES.len()];
            let mut circuit = library::by_name(name)
                .unwrap_or_else(|| panic!("library benchmark {name} missing"))
                .circuit();
            circuit.set_name(format!("{name}#{i}"));
            Job {
                id: i as u64,
                circuit,
                shots,
                arrival: t,
            }
        })
        .collect()
}

/// Generates a deterministic **skewed** job stream for policy
/// comparisons: mostly small library circuits with every third job a
/// wide GHZ chain of `heavy_width` qubits.
///
/// On a chip where `heavy_width + smallest_small > num_qubits`, the
/// heavy jobs cannot ride along with anything — under FIFO they block
/// the queue head (nothing behind them packs), which is exactly the
/// head-of-line pattern `Backfill` and `ShortestJobFirst` exist to
/// exploit.
pub fn skewed_jobs(n: usize, heavy_width: usize, gap_ns: f64, shots: usize, seed: u64) -> Vec<Job> {
    const SMALL: [&str; 3] = ["bell", "fredkin", "linearsolver"];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    // Small jobs rotate on their own counter: indexing by `i` would
    // collide with the heavy-slot modulus and skip SMALL[1] forever.
    let mut small_count = 0usize;
    (0..n)
        .map(|i| {
            t += rng.gen_range(0.0..gap_ns.max(f64::MIN_POSITIVE));
            let circuit = if i % 3 == 1 {
                let mut c = Circuit::with_name(heavy_width, format!("ghz{heavy_width}#{i}"));
                c.h(0);
                for q in 1..heavy_width {
                    c.cx(q - 1, q);
                }
                c
            } else {
                let name = SMALL[small_count % SMALL.len()];
                small_count += 1;
                let mut c = library::by_name(name)
                    .unwrap_or_else(|| panic!("library benchmark {name} missing"))
                    .circuit();
                c.set_name(format!("{name}#{i}"));
                c
            };
            Job {
                id: i as u64,
                circuit,
                shots,
                arrival: t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_jobs_are_deterministic_and_ordered() {
        let a = synthetic_jobs(12, 500.0, 128, 9);
        let b = synthetic_jobs(12, 500.0, 128, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|j| j.circuit.width() <= 5));
        // Ids are unique and sequential.
        for (i, j) in a.iter().enumerate() {
            assert_eq!(j.id, i as u64);
        }
    }

    #[test]
    fn skewed_jobs_mix_heavy_and_small() {
        let a = skewed_jobs(8, 13, 100.0, 64, 3);
        let b = skewed_jobs(8, 13, 100.0, 64, 3);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        for (i, j) in a.iter().enumerate() {
            if i % 3 == 1 {
                assert_eq!(j.circuit.width(), 13);
                assert!(j.circuit.name().starts_with("ghz13"));
            } else {
                assert!(j.circuit.width() <= 5);
            }
        }
    }
}
