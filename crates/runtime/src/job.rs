//! Jobs entering the batch scheduler and their per-job outcomes.

use qucp_circuit::{library, Circuit};
use qucp_core::ProgramResult;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One user job: a circuit to execute with a shot budget, arriving at a
/// given time.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Caller-assigned identifier (reported back in [`JobResult`]).
    pub id: u64,
    /// The logical circuit to run.
    pub circuit: Circuit,
    /// Measurement shots requested.
    pub shots: usize,
    /// Arrival time in nanoseconds (same unit as schedule makespans).
    pub arrival: f64,
}

/// The outcome of one job after its batch executed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The job's identifier.
    pub job_id: u64,
    /// Index of the batch that carried the job.
    pub batch_index: usize,
    /// Time the job's batch started (ns).
    pub start: f64,
    /// Time the job's batch completed (ns).
    pub completion: f64,
    /// Waiting time: start − arrival (ns).
    pub waiting: f64,
    /// Turnaround: completion − arrival (ns).
    pub turnaround: f64,
    /// The scored execution result (counts, PST, JSD, partition, EFS).
    pub result: ProgramResult,
}

/// Generates a deterministic synthetic job stream from the paper's
/// benchmark library: `n` small circuits arriving in a burst, with
/// inter-arrival gaps of 0–`gap_ns` nanoseconds.
///
/// The circuits cycle through the small (3–5 qubit) library benchmarks
/// so several consecutive jobs pack onto a 27-qubit chip.
pub fn synthetic_jobs(n: usize, gap_ns: f64, shots: usize, seed: u64) -> Vec<Job> {
    const NAMES: [&str; 6] = [
        "bell",
        "fredkin",
        "linearsolver",
        "variation",
        "alu-v0_27",
        "qec",
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            t += rng.gen_range(0.0..gap_ns.max(f64::MIN_POSITIVE));
            let name = NAMES[i % NAMES.len()];
            let mut circuit = library::by_name(name)
                .unwrap_or_else(|| panic!("library benchmark {name} missing"))
                .circuit();
            circuit.set_name(format!("{name}#{i}"));
            Job {
                id: i as u64,
                circuit,
                shots,
                arrival: t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_jobs_are_deterministic_and_ordered() {
        let a = synthetic_jobs(12, 500.0, 128, 9);
        let b = synthetic_jobs(12, 500.0, 128, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|j| j.circuit.width() <= 5));
        // Ids are unique and sequential.
        for (i, j) in a.iter().enumerate() {
            assert_eq!(j.id, i as u64);
        }
    }
}
