//! The pending-job store: the seed's linear `Vec` path and the indexed
//! scale-out path behind one seam.
//!
//! The service used to keep pending jobs in a bare `Vec<Pending>` and
//! rebuild the policy-facing [`JobView`] vector from scratch on every
//! dispatch step — fine at tens of jobs, ruinous under the heavy-traffic
//! regime the paper's cloud argument assumes (Sec. I: "millions of
//! users"). [`PendingStore`] hides the queue behind a small API with two
//! interchangeable implementations:
//!
//! - [`QueueIndexing::Linear`] is the seed path, kept bit-for-bit as the
//!   ablation baseline the `fleet_shootout` bench quantifies against:
//!   O(n) insert, O(n) seq lookup, a full O(n) view rebuild per
//!   `prepare`.
//! - [`QueueIndexing::Indexed`] (the default) maintains a persistent
//!   FIFO-sorted [`JobView`] mirror incrementally: O(log n) insert
//!   position (amortized-append for in-order arrivals), an O(1)
//!   seq→job map, O(log n) arrived-prefix binding per dispatch step,
//!   and dead-prefix removal so draining the queue front is an offset
//!   bump instead of a memmove.
//!
//! Both paths produce **identical observable behaviour** — dispatch
//! order, reports, events — which the `integration_fleet` equivalence
//! proptest pins down. The only intentional difference is cost.
//!
//! ## Joinable-flag maintenance
//!
//! A [`JobView`]'s `joinable` flag depends on the *head strategy* of the
//! dispatch step being prepared, so it cannot be precomputed once. The
//! indexed store interns each distinct per-job strategy override into a
//! small key table (key 0 = the service default, including overrides
//! that compare equal to it, matching the seed's value-equality rule)
//! and counts live override jobs. The common no-override case then skips
//! flag maintenance entirely: every flag is `true` and stays `true`.
//! Only while override jobs are live does `prepare` rewrite the arrived
//! prefix — O(arrived) — and a `flags_dirty` bit restores the all-true
//! invariant once the last override leaves the queue.

use std::collections::HashMap;

use qucp_circuit::Circuit;
use qucp_core::Strategy;
use qucp_sim::{ShotParallelism, TrajectoryKernel};

use crate::policy::JobView;
use crate::registry::RoutingChoice;

/// A pending (admitted but not yet dispatched) job.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub(crate) seq: usize,
    pub(crate) id: u64,
    pub(crate) circuit: Circuit,
    /// Cached `circuit.width()` — immutable once submitted.
    pub(crate) width: usize,
    /// Cached `circuit.gate_count()`.
    pub(crate) gates: usize,
    /// Cached `circuit.depth()` (O(gates) to recompute).
    pub(crate) depth: usize,
    /// Cached circuit-shape fingerprint (width + exact gate sequence,
    /// name excluded) — the plan/probe cache key component, computed
    /// once at submit instead of once per dispatch the job is probed.
    pub(crate) shape: u64,
    pub(crate) shots: usize,
    pub(crate) arrival: f64,
    pub(crate) strategy: Option<Strategy>,
    pub(crate) fidelity_threshold: Option<f64>,
    pub(crate) shot_parallelism: Option<ShotParallelism>,
    pub(crate) trajectory_kernel: Option<TrajectoryKernel>,
    /// Per-job routing override, consulted only when this job heads a
    /// batch (see [`RoutingChoice`]).
    pub(crate) routing: Option<RoutingChoice>,
    pub(crate) skips: usize,
}

/// How the service stores its pending queue.
///
/// Both modes are observationally equivalent — identical dispatch
/// order, reports and events on any submission/tick sequence; they
/// differ only in asymptotic cost. See the crate docs' complexity
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueIndexing {
    /// The scale-out default: an incrementally-maintained FIFO mirror
    /// with O(log n) insert binding, an O(1) seq→job map, and
    /// dead-prefix removal.
    #[default]
    Indexed,
    /// The seed's `Vec` path — O(n) everything — kept as the ablation
    /// baseline the `fleet_shootout` bench measures the indexed path
    /// against.
    Linear,
}

fn view_of(p: &Pending) -> JobView {
    JobView {
        id: p.id,
        seq: p.seq,
        arrival: p.arrival,
        width: p.width,
        gates: p.gates,
        depth: p.depth,
        area: p.width * p.depth,
        shots: p.shots,
        skips: p.skips,
        joinable: true,
    }
}

/// The seed queue: jobs in a FIFO-sorted `Vec`, views rebuilt from
/// scratch on every [`LinearStore::prepare`].
#[derive(Debug)]
pub(crate) struct LinearStore {
    jobs: Vec<Pending>,
    /// The arrived prefix rebuilt by the latest `prepare` (the seed
    /// allocated a fresh `Vec` per call; reusing the buffer keeps the
    /// rebuild cost without the allocator traffic).
    scratch: Vec<JobView>,
    default: Strategy,
}

impl LinearStore {
    fn prepare(&mut self, now: f64, head_strategy: Option<&Strategy>) {
        self.scratch.clear();
        for p in self.jobs.iter().take_while(|p| p.arrival <= now) {
            let mut view = view_of(p);
            view.joinable =
                head_strategy.is_none_or(|s| p.strategy.as_ref().unwrap_or(&self.default) == s);
            self.scratch.push(view);
        }
    }
}

/// The indexed queue: an O(1) seq→job map plus a persistent FIFO-sorted
/// [`JobView`] mirror maintained incrementally.
#[derive(Debug)]
pub(crate) struct IndexedStore {
    /// O(1) seq → job storage.
    jobs: HashMap<usize, Pending>,
    /// FIFO mirror of every pending job, sorted by `(arrival, seq)`
    /// (`total_cmp` order). Indices `..head` are a dead prefix awaiting
    /// compaction.
    views: Vec<JobView>,
    /// Interned strategy key per mirror slot, parallel to `views`
    /// (key 0 = the service default).
    keys: Vec<u32>,
    /// First live mirror index: front-contiguous removals bump this
    /// offset instead of shifting the vector.
    head: usize,
    /// Distinct strategies seen so far; slot 0 holds the default.
    interned: Vec<Strategy>,
    /// Live jobs whose interned key is not 0. While 0, `prepare` skips
    /// joinable-flag maintenance entirely.
    overrides: usize,
    /// Whether any live flag may be stale (a strategy-filtered pass
    /// ran); cleared by the next all-true reset once `overrides == 0`.
    flags_dirty: bool,
}

impl IndexedStore {
    fn strategy_key(&mut self, strategy: &Option<Strategy>) -> u32 {
        match strategy {
            None => 0,
            Some(s) => match self.interned.iter().position(|x| x == s) {
                Some(i) => i as u32,
                None => {
                    self.interned.push(s.clone());
                    (self.interned.len() - 1) as u32
                }
            },
        }
    }

    /// Live-window position of the `(arrival, seq)` key, by binary
    /// search over the sorted mirror.
    fn live_position(&self, arrival: f64, seq: usize) -> Option<usize> {
        let live = &self.views[self.head..];
        let pos = live.partition_point(|v| {
            v.arrival.total_cmp(&arrival).then(v.seq.cmp(&seq)) == std::cmp::Ordering::Less
        });
        (live.get(pos)?.seq == seq).then_some(pos)
    }

    fn insert(&mut self, p: Pending) {
        let key = self.strategy_key(&p.strategy);
        if key != 0 {
            self.overrides += 1;
        }
        let view = view_of(&p);
        // Same tie rule as the seed: after every job with
        // `arrival <= p.arrival` (equal arrivals keep submission order,
        // so the mirror stays `(arrival, seq)`-sorted).
        let rel = self.views[self.head..]
            .partition_point(|v| v.arrival.total_cmp(&p.arrival) != std::cmp::Ordering::Greater);
        let abs = self.head + rel;
        self.views.insert(abs, view);
        self.keys.insert(abs, key);
        self.jobs.insert(p.seq, p);
    }

    fn prepare(&mut self, now: f64, head_strategy: Option<&Strategy>) {
        if self.overrides > 0 {
            let end = self.views[self.head..].partition_point(|v| v.arrival <= now);
            match head_strategy {
                Some(s) => {
                    let hk = self
                        .interned
                        .iter()
                        .position(|x| x == s)
                        .map_or(u32::MAX, |i| i as u32);
                    let keys = &self.keys[self.head..];
                    for (i, v) in self.views[self.head..][..end].iter_mut().enumerate() {
                        v.joinable = keys[i] == hk;
                    }
                }
                None => {
                    for v in &mut self.views[self.head..][..end] {
                        v.joinable = true;
                    }
                }
            }
            self.flags_dirty = true;
        } else if self.flags_dirty {
            // The last override job left the queue: restore the
            // all-true invariant over the whole live window once (later
            // arrivals included — they may hold stale flags from a
            // filtered pass), then go back to skipping maintenance.
            for v in &mut self.views[self.head..] {
                v.joinable = true;
            }
            self.flags_dirty = false;
        }
    }

    fn remove_members(&mut self, seqs: &[usize]) {
        let mut positions: Vec<usize> = Vec::with_capacity(seqs.len());
        for &seq in seqs {
            let Some(p) = self.jobs.remove(&seq) else {
                debug_assert!(false, "removing job seq {seq} not in the store");
                continue;
            };
            let rel = self
                .live_position(p.arrival, seq)
                .expect("mirror entry exists for every stored job");
            let abs = self.head + rel;
            if self.keys[abs] != 0 {
                self.overrides -= 1;
            }
            positions.push(abs);
        }
        if positions.is_empty() {
            return;
        }
        positions.sort_unstable();
        let n = positions.len();
        if positions[0] == self.head && positions[n - 1] == self.head + n - 1 {
            // The batch drained the queue front (the FIFO common case):
            // removal is an offset bump, no element moves.
            self.head += n;
        } else {
            // Scattered removal (SJF / backfill picks): one in-place
            // compaction pass from the first removed slot.
            let first = positions[0];
            let mut next = 0;
            let mut write = first;
            for read in first..self.views.len() {
                if next < n && positions[next] == read {
                    next += 1;
                    continue;
                }
                self.views[write] = self.views[read];
                self.keys[write] = self.keys[read];
                write += 1;
            }
            self.views.truncate(write);
            self.keys.truncate(write);
        }
        // Compact once the dead prefix reaches half the buffer: each
        // slot is drained at most once, so removals stay amortized O(1)
        // per removed job and memory stays within 2× the live queue.
        if self.head > 0 && self.head * 2 >= self.views.len() {
            self.views.drain(..self.head);
            self.keys.drain(..self.head);
            self.head = 0;
        }
    }
}

/// The service's pending queue behind the linear/indexed seam.
///
/// Call discipline: [`PendingStore::prepare`] binds the arrived window
/// and joinable flags for a given `now`/head strategy;
/// [`PendingStore::arrived`] and [`PendingStore::position_of`] must then
/// be called with that same `now` before the next `prepare`.
#[derive(Debug)]
pub(crate) enum PendingStore {
    /// The seed `Vec` path (ablation baseline).
    Linear(LinearStore),
    /// The incrementally-indexed path (default).
    Indexed(IndexedStore),
}

impl PendingStore {
    pub(crate) fn new(indexing: QueueIndexing, default: Strategy) -> Self {
        match indexing {
            QueueIndexing::Linear => PendingStore::Linear(LinearStore {
                jobs: Vec::new(),
                scratch: Vec::new(),
                default,
            }),
            QueueIndexing::Indexed => PendingStore::Indexed(IndexedStore {
                jobs: HashMap::new(),
                views: Vec::new(),
                keys: Vec::new(),
                head: 0,
                interned: vec![default],
                overrides: 0,
                flags_dirty: false,
            }),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            PendingStore::Linear(s) => s.jobs.len(),
            PendingStore::Indexed(s) => s.views.len() - s.head,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arrival of the earliest pending job (`None` when empty).
    pub(crate) fn first_arrival(&self) -> Option<f64> {
        match self {
            PendingStore::Linear(s) => s.jobs.first().map(|p| p.arrival),
            PendingStore::Indexed(s) => s.views.get(s.head).map(|v| v.arrival),
        }
    }

    /// Admits a job, keeping FIFO `(arrival, submission)` order.
    pub(crate) fn insert(&mut self, p: Pending) {
        match self {
            PendingStore::Linear(s) => {
                let pos = s.jobs.partition_point(|q| {
                    q.arrival.total_cmp(&p.arrival) != std::cmp::Ordering::Greater
                });
                s.jobs.insert(pos, p);
            }
            PendingStore::Indexed(s) => s.insert(p),
        }
    }

    /// The stored job with submission index `seq`.
    pub(crate) fn get(&self, seq: usize) -> Option<&Pending> {
        match self {
            PendingStore::Linear(s) => s.jobs.iter().find(|p| p.seq == seq),
            PendingStore::Indexed(s) => s.jobs.get(&seq),
        }
    }

    /// Binds the arrived window for `now`, computing each arrived
    /// view's `joinable` flag against `head_strategy` (`None` = every
    /// arrived job is joinable, the head-selection pass).
    pub(crate) fn prepare(&mut self, now: f64, head_strategy: Option<&Strategy>) {
        match self {
            PendingStore::Linear(s) => s.prepare(now, head_strategy),
            PendingStore::Indexed(s) => s.prepare(now, head_strategy),
        }
    }

    /// The policy-facing views of all jobs arrived by `now`, in FIFO
    /// order, with flags from the latest [`PendingStore::prepare`].
    pub(crate) fn arrived(&self, now: f64) -> &[JobView] {
        match self {
            PendingStore::Linear(s) => &s.scratch,
            PendingStore::Indexed(s) => {
                let live = &s.views[s.head..];
                let end = live.partition_point(|v| v.arrival <= now);
                &live[..end]
            }
        }
    }

    /// Index of job `seq` in the arrived window (its `(arrival, seq)`
    /// key locates it in O(log n) on the indexed path).
    pub(crate) fn position_of(&self, arrival: f64, seq: usize) -> Option<usize> {
        match self {
            PendingStore::Linear(s) => s.scratch.iter().position(|v| v.seq == seq),
            PendingStore::Indexed(s) => {
                let _ = arrival;
                s.live_position(arrival, seq)
            }
        }
    }

    /// Bumps a job's overtake counter (backfill starvation accounting).
    pub(crate) fn bump_skip(&mut self, seq: usize) {
        match self {
            PendingStore::Linear(s) => {
                if let Some(p) = s.jobs.iter_mut().find(|p| p.seq == seq) {
                    p.skips += 1;
                }
            }
            PendingStore::Indexed(s) => {
                let Some(p) = s.jobs.get_mut(&seq) else {
                    debug_assert!(false, "bumping job seq {seq} not in the store");
                    return;
                };
                p.skips += 1;
                let arrival = p.arrival;
                let rel = s
                    .live_position(arrival, seq)
                    .expect("mirror entry exists for every stored job");
                s.views[s.head + rel].skips += 1;
            }
        }
    }

    /// Removes a committed batch's members.
    pub(crate) fn remove_members(&mut self, seqs: &[usize]) {
        match self {
            PendingStore::Linear(s) => s.jobs.retain(|p| !seqs.contains(&p.seq)),
            PendingStore::Indexed(s) => s.remove_members(seqs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_circuit::Circuit;
    use qucp_core::strategy;

    fn pending(seq: usize, arrival: f64, strategy_override: Option<Strategy>) -> Pending {
        let mut circuit = Circuit::new(2);
        circuit.h(0);
        circuit.cx(0, 1);
        Pending {
            seq,
            id: seq as u64,
            width: circuit.width(),
            gates: circuit.gate_count(),
            depth: circuit.depth(),
            shape: 0,
            circuit,
            shots: 64,
            arrival,
            strategy: strategy_override,
            fidelity_threshold: None,
            shot_parallelism: None,
            trajectory_kernel: None,
            routing: None,
            skips: 0,
        }
    }

    fn stores() -> [PendingStore; 2] {
        let default = strategy::qucp(strategy::DEFAULT_SIGMA);
        [
            PendingStore::new(QueueIndexing::Linear, default.clone()),
            PendingStore::new(QueueIndexing::Indexed, default),
        ]
    }

    #[test]
    fn both_paths_keep_fifo_order_under_out_of_order_arrivals() {
        for mut store in stores() {
            // Arrivals 30, 10, 20, 10: ties keep submission order.
            for (seq, arrival) in [(0, 30.0), (1, 10.0), (2, 20.0), (3, 10.0)] {
                store.insert(pending(seq, arrival, None));
            }
            store.prepare(f64::INFINITY, None);
            let order: Vec<usize> = store.arrived(f64::INFINITY).iter().map(|v| v.seq).collect();
            assert_eq!(order, vec![1, 3, 2, 0]);
            assert_eq!(store.first_arrival(), Some(10.0));
            // The arrived window respects `now`.
            store.prepare(15.0, None);
            let early: Vec<usize> = store.arrived(15.0).iter().map(|v| v.seq).collect();
            assert_eq!(early, vec![1, 3]);
        }
    }

    #[test]
    fn position_and_skip_bump_agree_between_paths() {
        for mut store in stores() {
            for (seq, arrival) in [(0, 0.0), (1, 1.0), (2, 2.0)] {
                store.insert(pending(seq, arrival, None));
            }
            store.prepare(f64::INFINITY, None);
            assert_eq!(store.position_of(1.0, 1), Some(1));
            store.bump_skip(1);
            store.bump_skip(1);
            store.prepare(f64::INFINITY, None);
            assert_eq!(store.arrived(f64::INFINITY)[1].skips, 2);
            assert_eq!(store.get(1).unwrap().skips, 2);
        }
    }

    #[test]
    fn removal_compacts_and_preserves_survivors() {
        for mut store in stores() {
            for seq in 0..6 {
                store.insert(pending(seq, seq as f64, None));
            }
            // Scattered removal first (mid-queue), then a front drain.
            store.remove_members(&[1, 3]);
            assert_eq!(store.len(), 4);
            store.prepare(f64::INFINITY, None);
            let order: Vec<usize> = store.arrived(f64::INFINITY).iter().map(|v| v.seq).collect();
            assert_eq!(order, vec![0, 2, 4, 5]);
            store.remove_members(&[0, 2]);
            store.prepare(f64::INFINITY, None);
            let order: Vec<usize> = store.arrived(f64::INFINITY).iter().map(|v| v.seq).collect();
            assert_eq!(order, vec![4, 5]);
            assert!(store.get(1).is_none());
            assert!(store.get(4).is_some());
        }
    }

    #[test]
    fn joinable_flags_follow_head_strategy_and_recover() {
        let default = strategy::qucp(strategy::DEFAULT_SIGMA);
        let other = strategy::cna();
        for mut store in stores() {
            store.insert(pending(0, 0.0, None));
            store.insert(pending(1, 1.0, Some(other.clone())));
            // An override equal to the default interns to the default
            // key — value equality, like the seed's comparison.
            store.insert(pending(2, 2.0, Some(default.clone())));

            store.prepare(f64::INFINITY, Some(&other));
            let flags: Vec<bool> = store
                .arrived(f64::INFINITY)
                .iter()
                .map(|v| v.joinable)
                .collect();
            assert_eq!(flags, vec![false, true, false]);

            store.prepare(f64::INFINITY, Some(&default));
            let flags: Vec<bool> = store
                .arrived(f64::INFINITY)
                .iter()
                .map(|v| v.joinable)
                .collect();
            assert_eq!(flags, vec![true, false, true]);

            // Once the only true-override job leaves, the all-true
            // invariant recovers even on the fast path.
            store.remove_members(&[1]);
            store.prepare(f64::INFINITY, None);
            assert!(store.arrived(f64::INFINITY).iter().all(|v| v.joinable));
            store.prepare(f64::INFINITY, Some(&default));
            assert!(store.arrived(f64::INFINITY).iter().all(|v| v.joinable));
        }
    }
}
