//! Iterative application campaigns riding the [`Service`]: the
//! generate → submit-batch → await-results → fold loop, factored once.
//!
//! The paper's thesis is that parallel circuit execution accelerates
//! real NISQ workloads — VQE's commuting-group measurement circuits,
//! ZNE's folded-circuit ladder, SRB's simultaneous-RB groups (see
//! Mineh & Montanaro, arXiv:2209.03796, and Ohkura et al.,
//! arXiv:2112.07091). All three share one shape: an iterative driver
//! that is a **pure function from prior results to the next
//! co-scheduled batch of requests**. [`CampaignDriver`] captures that
//! shape; [`run_campaign`] owns the loop, so application crates never
//! re-implement submission, awaiting, or retrieval.
//!
//! ## The loop
//!
//! Each round, [`run_campaign`]:
//!
//! 1. asks the driver for the next batch of [`JobRequest`]s
//!    ([`CampaignDriver::next_batch`]; `None` ends the campaign);
//! 2. stamps every request's arrival with the campaign clock (the max
//!    completion time seen so far) and submits them — co-arrival is
//!    what lets the admission policy pack them onto shared hardware;
//! 3. drains the round with [`Service::tick`] at `+∞` and claims each
//!    ticket's result with [`Service::take_result`] — the per-ticket,
//!    exactly-once retrieval seam (results are handed to the driver in
//!    submission order);
//! 4. hands the results to [`CampaignDriver::fold`] and advances the
//!    campaign clock.
//!
//! ## Ownership and determinism contract
//!
//! - The driver owns every claimed [`JobResult`] copy; the service
//!   retains the canonical results for its end-of-run drained
//!   [`ServiceReport`](crate::ServiceReport), which is **unchanged**
//!   by mid-stream claims (claim flags, not eviction — see
//!   [`Service::take_result`]).
//! - A campaign is deterministic end to end: the service's
//!   serial == concurrent guarantee covers every batch it dispatches,
//!   and the loop adds no nondeterminism of its own (arrival stamping
//!   and result ordering are pure functions of the submissions). The
//!   same driver on the same service configuration folds bit-identical
//!   results in [`ExecutionMode::Serial`](crate::ExecutionMode) and
//!   [`ExecutionMode::Concurrent`](crate::ExecutionMode).

use crate::job::JobResult;
use crate::scheduler::RuntimeError;
use crate::service::{JobRequest, Service};

/// An iterative job source: a pure function from prior results to the
/// next co-scheduled batch of requests.
///
/// Implementations hold the application state (a θ grid and folded
/// energies for VQE, a noise-scale ladder for ZNE, simultaneous-RB
/// groups for SRB) and must be deterministic: `next_batch` and `fold`
/// may depend only on the construction parameters and the results
/// folded so far, never on wall-clock time or thread identity — the
/// campaign's serial == concurrent guarantee rests on it.
pub trait CampaignDriver {
    /// What the campaign produces once no batches remain.
    type Output;

    /// The next co-scheduled batch, or `None` when the campaign is
    /// done. Arrival times are overwritten by the campaign clock, so
    /// drivers may leave them `0.0`. An empty batch also ends the
    /// campaign (a driver with nothing to submit is done).
    fn next_batch(&mut self, round: usize) -> Option<Vec<JobRequest>>;

    /// Folds one round's results — in submission order, one per
    /// request of the corresponding [`CampaignDriver::next_batch`] —
    /// into the driver state.
    fn fold(&mut self, round: usize, results: &[JobResult]);

    /// Consumes the driver into its output.
    fn finish(self) -> Self::Output
    where
        Self: Sized;
}

/// Scheduling statistics of one [`run_campaign`] call, accumulated
/// across its rounds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CampaignStats {
    /// Rounds the driver produced.
    pub rounds: usize,
    /// Jobs submitted across all rounds.
    pub jobs: usize,
    /// Batches the service dispatched for those jobs — the "scheduler
    /// ticks" a multiprogrammed campaign saves over a serial-direct
    /// one.
    pub batches: usize,
    /// The campaign clock after the last round: the simulated
    /// completion time of the whole campaign (ns).
    pub makespan: f64,
    /// Summed turnaround (ns) over every claimed result.
    pub total_turnaround: f64,
}

/// The outcome of a drained campaign: the driver's output plus the
/// scheduling statistics of the rounds that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun<O> {
    /// What the driver folded.
    pub output: O,
    /// How the service served it.
    pub stats: CampaignStats,
}

/// Runs a campaign to completion on `service` (see the module docs for
/// the loop and its contract).
///
/// The service may carry unrelated pending work; each round's `+∞`
/// tick drains it alongside the campaign's jobs (their tickets are
/// simply not claimed here, so their results stay available to their
/// owners and to the drained report).
///
/// # Errors
///
/// Propagates submission and dispatch errors
/// ([`RuntimeError::JobUnplaceable`], [`RuntimeError::Core`], …). A
/// claimed ticket that the drained round cannot produce is a service
/// invariant violation surfaced as [`RuntimeError::QueueCorrupted`].
pub fn run_campaign<D: CampaignDriver>(
    service: &mut Service,
    mut driver: D,
) -> Result<CampaignRun<D::Output>, RuntimeError> {
    let mut stats = CampaignStats::default();
    let batches_before = service.batches_run();
    let mut round = 0;
    while let Some(requests) = driver.next_batch(round) {
        if requests.is_empty() {
            break;
        }
        let mut tickets = Vec::with_capacity(requests.len());
        for mut request in requests {
            // Co-arrival at the campaign clock: the whole round is
            // visible to the admission policy at once, so it packs.
            request.arrival = stats.makespan;
            tickets.push(service.submit(request)?);
        }
        service.tick(f64::INFINITY)?;
        let mut results = Vec::with_capacity(tickets.len());
        for ticket in &tickets {
            let result = service
                .take_result(ticket)
                .ok_or(RuntimeError::QueueCorrupted { seq: ticket.seq })?;
            stats.makespan = stats.makespan.max(result.completion);
            stats.total_turnaround += result.turnaround;
            results.push(result);
        }
        stats.jobs += tickets.len();
        stats.rounds += 1;
        driver.fold(round, &results);
        round += 1;
    }
    stats.batches = service.batches_run() - batches_before;
    Ok(CampaignRun {
        output: driver.finish(),
        stats,
    })
}
