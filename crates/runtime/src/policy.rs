//! Pluggable admission policies: who leads the next batch and who rides
//! along.
//!
//! The paper's cloud-queue argument (Sec. I/II-A) treats the admission
//! discipline as fixed FIFO fair-share; Niu & Todri-Sanial's
//! multi-programming mechanism and Ohkura et al.'s simultaneous
//! execution study both show the interesting design space is exactly
//! here — which jobs are co-scheduled when a device frees up. The
//! [`Service`](crate::Service) therefore delegates the decision to an
//! [`AdmissionPolicy`]:
//!
//! - [`Fifo`] reproduces the seed scheduler bit-for-bit: strict arrival
//!   order, packing stops at the first job that does not fit.
//! - [`Backfill`] lets smaller jobs jump a head-of-line job that does
//!   not fit the remaining qubit budget, with a hard starvation bound:
//!   a job overtaken [`Backfill::max_overtakes`] times becomes a
//!   barrier no later job may pass.
//! - [`ShortestJobFirst`] orders by circuit area (width × depth, a
//!   service-time proxy), classic SJF turnaround optimisation at the
//!   cost of fairness.
//!
//! Policies never see circuits or devices — only [`JobView`]s and a
//! [`BatchBudget`] — so they stay cheap and deterministic; planning,
//! fidelity gating and execution remain the service's business.

use std::fmt;

/// What a policy may know about one pending job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobView {
    /// Effective job id.
    pub id: u64,
    /// Service-assigned submission index (FIFO tiebreaker).
    pub seq: usize,
    /// Arrival time (ns).
    pub arrival: f64,
    /// Logical qubit width.
    pub width: usize,
    /// Gate count of the circuit.
    pub gates: usize,
    /// Circuit depth (critical-path length in gates).
    pub depth: usize,
    /// Circuit area: `width × depth`, the service-time proxy
    /// [`ShortestJobFirst`] orders by. Precomputed once at submission so
    /// repeated packs never re-multiply per dispatch step.
    pub area: usize,
    /// Effective shot budget.
    pub shots: usize,
    /// How many batches have already overtaken this job (the backfill
    /// starvation counter).
    pub skips: usize,
    /// Whether this job can share a batch with the current head (same
    /// effective strategy). Always `true` during head selection.
    pub joinable: bool,
}

/// The resource envelope of the batch being formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchBudget {
    /// Physical qubits of the target device.
    pub qubits: usize,
    /// Maximum batch width (config cap, possibly tightened by the
    /// head-only EFS gate).
    pub max_members: usize,
}

/// Decides, each time a device frees up, which arrived job leads the
/// next batch and which others ride along.
///
/// `arrived` is always sorted FIFO (arrival time, then submission
/// order) and non-empty. Implementations must be deterministic pure
/// functions of their inputs — the service's bit-for-bit
/// reproducibility guarantee rests on it.
pub trait AdmissionPolicy: Send + Sync + fmt::Debug {
    /// Display name (reports, benches).
    fn name(&self) -> &str;

    /// Picks the head-of-line job; returns its index into `arrived`.
    fn choose_head(&self, arrived: &[JobView]) -> usize;

    /// Packs the batch around `head` (an index into `arrived`),
    /// returning member indices with the head first. The service
    /// guarantees `arrived[head].joinable` and enforces the budget
    /// again afterwards; the head is admitted even when wider than the
    /// budget so that planning can surface the precise placement error.
    fn pack(&self, arrived: &[JobView], head: usize, budget: &BatchBudget) -> Vec<usize>;
}

/// Strict arrival-order service: the seed scheduler's discipline (IBM
/// fair-share semantics). Packing walks the queue in order and stops at
/// the first job that does not fit — no overtaking, ever.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fifo;

impl AdmissionPolicy for Fifo {
    fn name(&self) -> &str {
        "FIFO"
    }

    fn choose_head(&self, _arrived: &[JobView]) -> usize {
        0
    }

    fn pack(&self, arrived: &[JobView], head: usize, budget: &BatchBudget) -> Vec<usize> {
        let mut members = vec![head];
        let mut used = arrived[head].width;
        for (i, job) in arrived.iter().enumerate().skip(head + 1) {
            if members.len() >= budget.max_members
                || !job.joinable
                || used + job.width > budget.qubits
            {
                break;
            }
            used += job.width;
            members.push(i);
        }
        members
    }
}

/// FIFO with backfilling: jobs that do not fit the remaining budget are
/// skipped instead of blocking the batch, so smaller jobs behind them
/// may ride along.
///
/// Starvation is bounded: every time a batch admits a job queued behind
/// a skipped one, the skipped job's overtake counter rises; once it
/// reaches `max_overtakes` the job becomes a barrier — packing stops
/// there until the job itself is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backfill {
    /// How many batches may overtake a waiting job before it becomes a
    /// barrier.
    pub max_overtakes: usize,
}

impl Default for Backfill {
    fn default() -> Self {
        Backfill { max_overtakes: 4 }
    }
}

impl AdmissionPolicy for Backfill {
    fn name(&self) -> &str {
        "Backfill"
    }

    fn choose_head(&self, _arrived: &[JobView]) -> usize {
        0
    }

    fn pack(&self, arrived: &[JobView], head: usize, budget: &BatchBudget) -> Vec<usize> {
        let mut members = vec![head];
        let mut used = arrived[head].width;
        for (i, job) in arrived.iter().enumerate().skip(head + 1) {
            if members.len() >= budget.max_members {
                break;
            }
            if job.joinable && used + job.width <= budget.qubits {
                used += job.width;
                members.push(i);
            } else if job.width <= budget.qubits && job.skips >= self.max_overtakes {
                // Starvation bound: this job has been jumped enough.
                // Jobs wider than the whole device are never barriers
                // here — they cannot run on this chip at all, and the
                // service routes them (and their overtake accounting)
                // to a chip that admits them.
                break;
            }
        }
        members
    }
}

/// Shortest-job-first: both the head and the riders are chosen by
/// ascending circuit area — width × depth, a proxy for the schedule
/// time the job will occupy its partition — with ties broken FIFO.
/// Classic SJF turnaround minimisation on skewed workloads, at the
/// cost of delaying large jobs. Jobs that do not fit are skipped, not
/// barriers — SJF makes no fairness promise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShortestJobFirst;

fn sjf_key(job: &JobView) -> (usize, f64, usize) {
    (job.area, job.arrival, job.seq)
}

fn sjf_cmp(a: &JobView, b: &JobView) -> std::cmp::Ordering {
    let (ga, aa, sa) = sjf_key(a);
    let (gb, ab, sb) = sjf_key(b);
    ga.cmp(&gb).then(aa.total_cmp(&ab)).then(sa.cmp(&sb))
}

impl AdmissionPolicy for ShortestJobFirst {
    fn name(&self) -> &str {
        "SJF"
    }

    fn choose_head(&self, arrived: &[JobView]) -> usize {
        let mut best = 0;
        for i in 1..arrived.len() {
            if sjf_cmp(&arrived[i], &arrived[best]) == std::cmp::Ordering::Less {
                best = i;
            }
        }
        best
    }

    fn pack(&self, arrived: &[JobView], head: usize, budget: &BatchBudget) -> Vec<usize> {
        let mut members = vec![head];
        let mut used = arrived[head].width;
        let mut order: Vec<usize> = (0..arrived.len()).filter(|&i| i != head).collect();
        order.sort_by(|&a, &b| sjf_cmp(&arrived[a], &arrived[b]));
        for i in order {
            if members.len() >= budget.max_members {
                break;
            }
            let job = &arrived[i];
            if job.joinable && used + job.width <= budget.qubits {
                used += job.width;
                members.push(i);
            }
        }
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(seq: usize, arrival: f64, width: usize, depth: usize) -> JobView {
        JobView {
            id: seq as u64,
            seq,
            arrival,
            width,
            gates: depth,
            depth,
            area: width * depth,
            shots: 64,
            skips: 0,
            joinable: true,
        }
    }

    const BUDGET: BatchBudget = BatchBudget {
        qubits: 10,
        max_members: 4,
    };

    #[test]
    fn fifo_stops_at_first_misfit() {
        let arrived = vec![
            view(0, 0.0, 3, 5),
            view(1, 1.0, 9, 5), // does not fit next to job 0
            view(2, 2.0, 2, 5),
        ];
        assert_eq!(Fifo.choose_head(&arrived), 0);
        assert_eq!(Fifo.pack(&arrived, 0, &BUDGET), vec![0]);
    }

    #[test]
    fn fifo_respects_member_cap_and_joinability() {
        let mut arrived = vec![
            view(0, 0.0, 1, 1),
            view(1, 1.0, 1, 1),
            view(2, 2.0, 1, 1),
            view(3, 3.0, 1, 1),
            view(4, 4.0, 1, 1),
        ];
        assert_eq!(Fifo.pack(&arrived, 0, &BUDGET), vec![0, 1, 2, 3]);
        arrived[1].joinable = false;
        assert_eq!(Fifo.pack(&arrived, 0, &BUDGET), vec![0]);
    }

    #[test]
    fn backfill_skips_misfits_but_honors_barrier() {
        let mut arrived = vec![
            view(0, 0.0, 3, 5),
            view(1, 1.0, 9, 5), // too wide to ride along
            view(2, 2.0, 2, 5),
        ];
        let policy = Backfill { max_overtakes: 2 };
        assert_eq!(policy.pack(&arrived, 0, &BUDGET), vec![0, 2]);
        // Once the big job has been overtaken to its bound, it blocks.
        arrived[1].skips = 2;
        assert_eq!(policy.pack(&arrived, 0, &BUDGET), vec![0]);
    }

    #[test]
    fn sjf_orders_by_circuit_area() {
        let arrived = vec![view(0, 0.0, 3, 50), view(1, 1.0, 3, 5), view(2, 2.0, 3, 20)];
        assert_eq!(ShortestJobFirst.choose_head(&arrived), 1);
        assert_eq!(ShortestJobFirst.pack(&arrived, 1, &BUDGET), vec![1, 2, 0]);
    }

    #[test]
    fn head_wider_than_budget_still_admitted_alone() {
        let arrived = vec![view(0, 0.0, 64, 5), view(1, 1.0, 2, 5)];
        assert_eq!(Fifo.pack(&arrived, 0, &BUDGET), vec![0]);
        assert_eq!(Backfill::default().pack(&arrived, 0, &BUDGET), vec![0]);
        assert_eq!(ShortestJobFirst.pack(&arrived, 0, &BUDGET), vec![0]);
    }
}
