//! The event-driven scheduling service: streaming submissions, online
//! admission, multi-device dispatch.
//!
//! See the crate docs for the lifecycle
//! (submit → admit → plan → execute → observe). This module owns the
//! [`Service`] state machine, its [`ServiceBuilder`], the per-job
//! [`JobRequest`]/[`JobTicket`] types, and the drained
//! [`ServiceReport`].

use std::collections::HashMap;

use qucp_circuit::Circuit;
use qucp_core::pipeline::{Pipeline, PlannedWorkload};
use qucp_core::queue::QueueStats;
use qucp_core::threshold::{parallel_count_for_threshold, solo_efs_scores};
use qucp_core::{best_partition, strategy, CoreError, ParallelConfig, PartitionPolicy};
use qucp_core::{ProgramResult, Strategy};
use qucp_device::{Calibration, CrosstalkModel, Device, DriftEvent, DriftModel};
use qucp_sim::{ExecutionConfig, ShotParallelism, TrajectoryKernel};

use crate::event::{Event, EventLog, EventObserver, ShrinkReason};
use crate::job::{Job, JobResult};
use crate::pending::{Pending, PendingStore, QueueIndexing};
use crate::policy::{AdmissionPolicy, BatchBudget, Fifo};
use crate::registry::{
    ClockIndex, DeviceId, DeviceRegistry, EarliestFree, RouteQuery, RoutingChoice, RoutingPolicy,
};
use crate::scheduler::{BatchReport, CalibrationFault, ExecutionMode, RuntimeConfig, RuntimeError};

/// How the EFS fidelity-threshold gate sizes a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EfsGate {
    /// The seed scheduler's behaviour (and the paper's Fig. 4
    /// experiment): before packing, probe how many *copies of the
    /// head-of-line circuit* stay within the threshold and cap the
    /// batch width at that count. Kept as the default for bit-for-bit
    /// parity with `BatchScheduler::run`.
    #[default]
    HeadOnly,
    /// Evaluate the *actual heterogeneous batch*: after packing, every
    /// member's EFS excess over its solo-best partition is compared
    /// against that member's own effective threshold, and the batch
    /// shrinks from the tail until all members tolerate it. Closes the
    /// ROADMAP fidelity item.
    Batch,
    /// [`EfsGate::Batch`]'s evaluation with *worst-excess eviction*:
    /// instead of dropping the tail member, each shrink step evicts the
    /// member with the largest EFS excess — the one whose partition
    /// degraded most under contention — so a well-placed tail member
    /// survives a badly-placed middle one. The head is exempt (it
    /// anchors the batch); ties evict the member closest to the tail,
    /// matching tail-shrink when excesses are uniform. Partition
    /// failures still shrink from the tail in every mode.
    BatchWorstExcess,
}

/// A streaming job submission: the circuit plus optional per-job
/// overrides of the service defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The logical circuit to run.
    pub circuit: Circuit,
    /// Arrival time in nanoseconds (must be finite).
    pub arrival: f64,
    /// Caller-assigned id; defaults to the submission index.
    pub id: Option<u64>,
    /// Shot budget; defaults to the service's `default_shots`.
    pub shots: Option<usize>,
    /// Per-job strategy override. Jobs only share a batch with jobs of
    /// the same effective strategy, and the batch is planned through a
    /// pipeline assembled from it.
    pub strategy: Option<Strategy>,
    /// Per-job EFS fidelity-threshold override (must be finite and
    /// non-negative); defaults to the service's configured threshold.
    pub fidelity_threshold: Option<f64>,
    /// Per-job intra-program shot-parallelism override, layered over
    /// the service default of
    /// [`ServiceBuilder::shot_parallelism`](crate::ServiceBuilder::shot_parallelism):
    /// a huge job can shard its trajectory loop while the rest of the
    /// stream stays serial (or vice versa). Counts stay deterministic
    /// per the [`ShotParallelism`] contract — a pure function of the
    /// effective mode and the job, never of the thread count.
    pub shot_parallelism: Option<ShotParallelism>,
    /// Per-job trajectory-kernel override, layered over the service
    /// default of
    /// [`ServiceBuilder::trajectory_kernel`](crate::ServiceBuilder::trajectory_kernel):
    /// a latency-critical probe job can run the cheap
    /// [`SurvivalSkip`](TrajectoryKernel::SurvivalSkip) kernel while
    /// the rest of the stream keeps the bit-pinned
    /// [`Replay`](TrajectoryKernel::Replay) stream (or vice versa).
    pub trajectory_kernel: Option<TrajectoryKernel>,
    /// Per-job routing-policy override, consulted only when this job
    /// heads a batch: the head's effective policy routes the whole
    /// batch, exactly as the head's strategy plans it. `None` routes
    /// with the service default, bit-for-bit — and an explicit override
    /// equal to the default is observationally identical to no override
    /// (pinned by the campaign test suite). See [`RoutingChoice`].
    pub routing: Option<RoutingChoice>,
}

impl JobRequest {
    /// A request with no overrides.
    pub fn new(circuit: Circuit, arrival: f64) -> Self {
        JobRequest {
            circuit,
            arrival,
            id: None,
            shots: None,
            strategy: None,
            fidelity_threshold: None,
            shot_parallelism: None,
            trajectory_kernel: None,
            routing: None,
        }
    }

    /// Sets the caller-assigned id.
    #[must_use]
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }

    /// Overrides the shot budget.
    #[must_use]
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = Some(shots);
        self
    }

    /// Overrides the execution strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Overrides the EFS fidelity threshold.
    #[must_use]
    pub fn with_fidelity_threshold(mut self, threshold: f64) -> Self {
        self.fidelity_threshold = Some(threshold);
        self
    }

    /// Overrides the intra-program shot parallelism for this job only.
    #[must_use]
    pub fn with_shot_parallelism(mut self, parallelism: ShotParallelism) -> Self {
        self.shot_parallelism = Some(parallelism);
        self
    }

    /// Overrides the trajectory kernel for this job only.
    #[must_use]
    pub fn with_trajectory_kernel(mut self, kernel: TrajectoryKernel) -> Self {
        self.trajectory_kernel = Some(kernel);
        self
    }

    /// Overrides the routing policy for batches this job heads.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingChoice) -> Self {
        self.routing = Some(routing);
        self
    }

    /// The legacy [`Job`] as a request (caller id and shots pinned).
    pub fn from_job(job: &Job) -> Self {
        JobRequest::new(job.circuit.clone(), job.arrival)
            .with_id(job.id)
            .with_shots(job.shots)
    }
}

/// Receipt of an accepted submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobTicket {
    /// Service-assigned submission index (unique per service).
    pub seq: usize,
    /// Effective job id (caller-assigned or `seq as u64`).
    pub id: u64,
}

/// Per-device queue statistics of a drained service.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Device name.
    pub device: String,
    /// Jobs the device served.
    pub jobs: usize,
    /// Queue statistics over those jobs (waiting/turnaround means,
    /// device-clock makespan, utilization-weighted throughput).
    pub stats: QueueStats,
}

/// The complete outcome of a drained service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Fleet-wide queue statistics, comparable with the analytical
    /// model and the legacy `RunReport`.
    pub stats: QueueStats,
    /// Per-device breakdown, in registration order.
    pub per_device: Vec<DeviceReport>,
    /// Every dispatched batch, in dispatch order.
    pub batches: Vec<BatchReport>,
    /// Per-job results, in submission order.
    pub job_results: Vec<JobResult>,
    /// The retained telemetry log (every event ever emitted under the
    /// default unbounded [`ServiceBuilder::event_capacity`]; only the
    /// most recent `capacity` under a bound).
    pub events: Vec<Event>,
    /// Events the [`ServiceBuilder::event_capacity`] bound dropped from
    /// the retained log (always 0 when unbounded). Observers saw every
    /// event regardless.
    pub dropped_events: usize,
}

/// Per-device runtime state (the registry holds only the static fleet).
#[derive(Debug, Clone, Default)]
struct DeviceState {
    clock: f64,
    busy_time: f64,
    busy_qubit_time: f64,
    batches: usize,
    jobs: usize,
    total_wait: f64,
    total_turnaround: f64,
}

/// The most drift steps one [`Service::advance_drift`] call may apply
/// per device. A fleet that drifts hourly stays under this bound for
/// over a decade of simulated time per advance; hitting it almost
/// always means a clock-unit mismatch (seconds fed to a nanosecond
/// interval) or a degenerate interval, so the advance is refused with
/// [`RuntimeError::DriftHorizonTooFar`] instead of looping — and never
/// silently truncated, because skipping steps would fork the
/// deterministic noise trajectory.
pub const MAX_DRIFT_STEPS_PER_ADVANCE: u64 = 100_000;

/// How the cross-batch planning cache reacts to calibration-epoch
/// bumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheInvalidation {
    /// The default protocol: an epoch bump drops every cached probe of
    /// the bumped device, so the next dispatch re-probes against the
    /// current calibration. A frozen fleet never bumps, so this mode
    /// is bit-for-bit the pre-live-fleet behaviour.
    #[default]
    EpochAware,
    /// Never invalidate — cached probes survive recalibrations and
    /// drift, so routing keeps ranking chips by **stale** calibration
    /// data while execution uses the live values. Exists as the
    /// ablation baseline the `drift_shootout` bench quantifies against;
    /// do not use it in production configurations.
    Never,
}

/// Whether the service memoizes whole committed *plans* across batches.
///
/// Plan entries are keyed by *(device, calibration epoch, ordered
/// member circuit shapes, strategy, gate mode/optimize bits[, member
/// thresholds])* — every input planning consults — so a replayed plan
/// is **bit-identical** to what a fresh partition + map + merge pass
/// would produce (only stale program *names* need re-binding, which the
/// dispatch loop does for both paths). The two modes therefore produce
/// identical tickets, events and reports on any submission/tick/drift
/// sequence; `Never` exists as the ablation baseline the
/// `fleet_shootout` bench quantifies against, mirroring
/// [`CacheInvalidation::Never`].
///
/// Note the epoch lives **in the key**, not just in the invalidation
/// protocol: even under [`CacheInvalidation::Never`] (which skips the
/// garbage collection) a post-bump dispatch can never replay a
/// stale-epoch plan — stale routing is an acceptable ablation, stale
/// *execution plans* never are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMemo {
    /// The default: memoize committed plans per calibration epoch; a
    /// hit skips the whole gated planning pass and replays the cached
    /// plan clone-free (shared behind an `Arc`).
    #[default]
    EpochKeyed,
    /// Plan every batch from scratch — the ablation baseline.
    Never,
}

/// How the service runs the execution half of its dispatch loop.
///
/// Dispatch decisions (head choice, routing, packing, planning) never
/// depend on execution *results* — a batch's completion time is
/// `start + plan.context.makespan`, a pure planning output — so the
/// loop splits into a sequential *staging* pass (all decisions, queue
/// and clock mutations) and per-batch *execution* that only fills in
/// measurement outcomes. Both modes run the same staging pass; they
/// differ only in when execution happens. Serial == sharded bit-for-bit
/// (tickets, events, drained report), pinned by the fleet equivalence
/// proptests the same way [`QueueIndexing::Linear`] vs
/// [`QueueIndexing::Indexed`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchSharding {
    /// The default: stage and execute one batch at a time on the
    /// calling thread — the seed loop's behaviour.
    #[default]
    Single,
    /// Stage every dispatchable batch, then execute per device
    /// **group** ([`DeviceRegistry`] groups, see
    /// [`ServiceBuilder::device_groups`]): one `std::thread::scope`
    /// worker per non-empty group runs its group's batches in batch
    /// order, and the results merge back deterministically in global
    /// batch order. After an *execution* error (exotic backend
    /// failures only — planning errors surface identically in both
    /// modes) the service should be discarded in either mode.
    Grouped,
}

/// Builds a [`Service`]; validation happens in [`ServiceBuilder::build`].
pub struct ServiceBuilder {
    registry: DeviceRegistry,
    strategy: Strategy,
    policy: Box<dyn AdmissionPolicy>,
    routing: Box<dyn RoutingPolicy>,
    cfg: RuntimeConfig,
    efs_gate: EfsGate,
    default_shots: usize,
    observers: Vec<Box<dyn EventObserver>>,
    drift: Option<Box<dyn DriftModel>>,
    invalidation: CacheInvalidation,
    queue_indexing: QueueIndexing,
    event_capacity: Option<usize>,
    best_k: usize,
    plan_memo: PlanMemo,
    sharding: DispatchSharding,
    device_groups: Option<usize>,
}

impl std::fmt::Debug for ServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceBuilder")
            .field("devices", &self.registry.len())
            .field("strategy", &self.strategy.name)
            .field("policy", &self.policy)
            .field("routing", &self.routing)
            .field("cfg", &self.cfg)
            .field("efs_gate", &self.efs_gate)
            .field("default_shots", &self.default_shots)
            .field("drift", &self.drift)
            .field("invalidation", &self.invalidation)
            .finish_non_exhaustive()
    }
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder::new()
    }
}

impl ServiceBuilder {
    /// A builder with an empty fleet, QuCP strategy, FIFO admission,
    /// earliest-free routing, the default [`RuntimeConfig`], the
    /// head-only EFS gate, and 1024 default shots.
    pub fn new() -> Self {
        ServiceBuilder {
            registry: DeviceRegistry::new(),
            strategy: strategy::qucp(strategy::DEFAULT_SIGMA),
            policy: Box::new(Fifo),
            routing: Box::new(EarliestFree),
            cfg: RuntimeConfig::default(),
            efs_gate: EfsGate::default(),
            default_shots: 1024,
            observers: Vec::new(),
            drift: None,
            invalidation: CacheInvalidation::default(),
            queue_indexing: QueueIndexing::default(),
            event_capacity: None,
            best_k: 1,
            plan_memo: PlanMemo::default(),
            sharding: DispatchSharding::default(),
            device_groups: None,
        }
    }

    /// Registers a device (repeatable; registration order breaks
    /// routing ties).
    #[must_use]
    pub fn device(mut self, device: Device) -> Self {
        self.registry.register(device);
        self
    }

    /// Replaces the whole fleet at once.
    #[must_use]
    pub fn registry(mut self, registry: DeviceRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Sets the default execution strategy.
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the admission policy.
    #[must_use]
    pub fn policy(mut self, policy: impl AdmissionPolicy + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Sets the routing policy deciding which admitting device each
    /// batch dispatches to. [`EarliestFree`] (the default) is
    /// bit-for-bit the pre-seam dispatch rule;
    /// [`CalibrationAware`](crate::CalibrationAware) routes by the head
    /// circuit's calibration quality blended with queue pressure.
    #[must_use]
    pub fn routing(mut self, policy: impl RoutingPolicy + 'static) -> Self {
        self.routing = Box::new(policy);
        self
    }

    /// Replaces the base runtime configuration wholesale.
    #[must_use]
    pub fn config(mut self, cfg: RuntimeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Caps the co-schedule width.
    #[must_use]
    pub fn max_parallel(mut self, max_parallel: usize) -> Self {
        self.cfg.max_parallel = max_parallel;
        self
    }

    /// Sets the default EFS fidelity threshold (`None` disables the
    /// gate for jobs without their own override).
    #[must_use]
    pub fn fidelity_threshold(mut self, threshold: Option<f64>) -> Self {
        self.cfg.fidelity_threshold = threshold;
        self
    }

    /// Chooses how the threshold gate evaluates a batch.
    #[must_use]
    pub fn efs_gate(mut self, gate: EfsGate) -> Self {
        self.efs_gate = gate;
        self
    }

    /// Sets the base RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Enables or disables the cancellation peephole pass.
    #[must_use]
    pub fn optimize(mut self, optimize: bool) -> Self {
        self.cfg.optimize = optimize;
        self
    }

    /// Concurrent or serial per-batch execution.
    #[must_use]
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Intra-program shot parallelism for every executed program (see
    /// [`ShotParallelism`]); layered under the per-batch concurrency of
    /// [`ServiceBuilder::mode`]. The serial default keeps reports
    /// bit-for-bit identical to the pre-sharding runtime.
    #[must_use]
    pub fn shot_parallelism(mut self, parallelism: ShotParallelism) -> Self {
        self.cfg.shot_parallelism = parallelism;
        self
    }

    /// Trajectory kernel for every executed program (see
    /// [`TrajectoryKernel`]); individual jobs may override it via
    /// [`JobRequest::with_trajectory_kernel`]. The [`Replay`]
    /// default keeps reports bit-for-bit identical to the
    /// pre-kernel-selection runtime.
    ///
    /// [`Replay`]: TrajectoryKernel::Replay
    #[must_use]
    pub fn trajectory_kernel(mut self, kernel: TrajectoryKernel) -> Self {
        self.cfg.trajectory_kernel = kernel;
        self
    }

    /// Default shot budget for requests without an override.
    #[must_use]
    pub fn default_shots(mut self, shots: usize) -> Self {
        self.default_shots = shots;
        self
    }

    /// Registers a telemetry observer (repeatable); observers see every
    /// [`Event`] in emission order.
    #[must_use]
    pub fn observer(mut self, observer: impl EventObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Attaches a fleet-wide calibration [`DriftModel`]: every device
    /// ages along its own deterministic trajectory (salted by
    /// registration index) as the caller advances simulated time with
    /// [`Service::advance_drift`]. Without a model the fleet stays
    /// frozen — `advance_drift` is then a no-op.
    #[must_use]
    pub fn drift(mut self, model: impl DriftModel + 'static) -> Self {
        self.drift = Some(Box::new(model));
        self
    }

    /// Chooses how the cross-batch planning cache reacts to
    /// calibration-epoch bumps. The default
    /// [`CacheInvalidation::EpochAware`] drops a device's cached probes
    /// whenever its calibration changes;
    /// [`CacheInvalidation::Never`] is the stale-cache ablation used by
    /// the drift shoot-out.
    #[must_use]
    pub fn cache_invalidation(mut self, invalidation: CacheInvalidation) -> Self {
        self.invalidation = invalidation;
        self
    }

    /// Chooses the pending-queue implementation. The
    /// [`QueueIndexing::Indexed`] default and the
    /// [`QueueIndexing::Linear`] seed path are observationally
    /// equivalent — identical dispatch order, reports and events on any
    /// submission/tick sequence (pinned by the equivalence proptest) —
    /// the linear path exists as the ablation baseline the
    /// `fleet_shootout` bench quantifies against.
    #[must_use]
    pub fn queue_indexing(mut self, indexing: QueueIndexing) -> Self {
        self.queue_indexing = indexing;
        self
    }

    /// Bounds the retained event log (see the [`EventLog`] capacity
    /// contract): `None` — the default — retains every event for the
    /// service's lifetime, bit-for-bit the prior behaviour;
    /// `Some(capacity)` keeps only the `capacity` most-recent events
    /// live and counts the rest in
    /// [`ServiceReport::dropped_events`]. Observers see every event at
    /// emission time regardless of the bound.
    #[must_use]
    pub fn event_capacity(mut self, capacity: Option<usize>) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Plans the head batch on the top-`k` routing candidates
    /// concurrently (`std::thread::scope`) instead of walking them one
    /// at a time. Deterministic by construction: the committed winner
    /// is always the **first** candidate in `(score, free time,
    /// registration)` order whose plan succeeds — exactly the `k = 1`
    /// sequential winner; speculation precomputes outcomes, it never
    /// reorders them. Losing candidates' planning probes still land in
    /// the route cache (warming later dispatches), which is the only
    /// observable difference: with `k > 1` the
    /// [`RouteCacheStats`] counters may run ahead of the sequential
    /// schedule. Values are clamped to at least 1; the default 1
    /// disables speculation.
    #[must_use]
    pub fn best_k(mut self, k: usize) -> Self {
        self.best_k = k.max(1);
        self
    }

    /// Chooses whether committed plans are memoized across batches (see
    /// [`PlanMemo`]). The [`PlanMemo::EpochKeyed`] default replays a
    /// cached plan whenever a batch with the same ordered member shapes
    /// dispatches to the same device at the same calibration epoch —
    /// observationally identical to replanning, pinned by the plan-memo
    /// equivalence proptest; [`PlanMemo::Never`] is the replan-always
    /// ablation the `fleet_shootout` bench quantifies against.
    #[must_use]
    pub fn plan_memo(mut self, memo: PlanMemo) -> Self {
        self.plan_memo = memo;
        self
    }

    /// Chooses how the dispatch loop executes staged batches (see
    /// [`DispatchSharding`]). [`DispatchSharding::Grouped`] runs one
    /// worker per device group; configure the grouping with
    /// [`ServiceBuilder::device_groups`] (or
    /// [`DeviceRegistry::set_group`] before handing the registry over).
    /// Both modes are observationally equivalent, pinned by the sharded
    /// equivalence proptest.
    #[must_use]
    pub fn dispatch_sharding(mut self, sharding: DispatchSharding) -> Self {
        self.sharding = sharding;
        self
    }

    /// Splits the fleet into `groups` dispatch groups round-robin by
    /// registration index (group = index mod `groups`, clamped to at
    /// least 1), overriding any grouping already present on the
    /// registry. Groups only matter under
    /// [`DispatchSharding::Grouped`], where each group's batches
    /// execute on their own worker thread.
    #[must_use]
    pub fn device_groups(mut self, groups: usize) -> Self {
        self.device_groups = Some(groups.max(1));
        self
    }

    /// Validates the configuration and builds the service.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoDevices`] on an empty fleet,
    /// [`RuntimeError::ZeroParallel`] on a zero batch cap,
    /// [`RuntimeError::ZeroShots`] on a zero default shot budget,
    /// [`RuntimeError::InvalidThreshold`] on a NaN, infinite or
    /// negative default threshold.
    pub fn build(self) -> Result<Service, RuntimeError> {
        if self.registry.is_empty() {
            return Err(RuntimeError::NoDevices);
        }
        if self.cfg.max_parallel == 0 {
            return Err(RuntimeError::ZeroParallel);
        }
        if self.default_shots == 0 {
            return Err(RuntimeError::ZeroShots);
        }
        if let Some(t) = self.cfg.fidelity_threshold {
            if !t.is_finite() || t < 0.0 {
                return Err(RuntimeError::InvalidThreshold { value: t });
            }
        }
        let states = vec![DeviceState::default(); self.registry.len()];
        // Baseline snapshots are the reset targets of drift-scheduled
        // recalibrations; only a drifting fleet pays for the clones.
        let baselines = self.drift.is_some().then(|| {
            self.registry
                .iter()
                .map(|(_, d)| (d.calibration().clone(), d.crosstalk().clone()))
                .collect()
        });
        let drift_steps = vec![0u64; self.registry.len()];
        // The clock index rides the same seam as the pending queue:
        // the indexed path keeps a keyed priority structure over device
        // clocks, the linear ablation path keeps the seed's O(D) scan.
        // Both answer identically (pinned by the fleet equivalence
        // proptests).
        let clock_index = (self.queue_indexing == QueueIndexing::Indexed)
            .then(|| ClockIndex::new(self.registry.len()));
        let pending = PendingStore::new(self.queue_indexing, self.strategy.clone());
        let mut registry = self.registry;
        if let Some(groups) = self.device_groups {
            registry.assign_groups_round_robin(groups);
        }
        // Plan-cache key components that never change over the
        // service's lifetime, fingerprinted once here instead of once
        // per dispatch.
        let plan_cfg_fp = plan_cfg_fingerprint(self.efs_gate, self.cfg.optimize);
        let default_strategy_fp = strategy_fingerprint(&self.strategy);
        Ok(Service {
            strategy: self.strategy,
            policy: self.policy,
            routing: self.routing,
            cfg: self.cfg,
            efs_gate: self.efs_gate,
            default_shots: self.default_shots,
            registry,
            states,
            pending,
            next_seq: 0,
            batches: Vec::new(),
            results: Vec::new(),
            claimed: Vec::new(),
            unreported: Vec::new(),
            clock_index,
            route_cache: RouteCache::default(),
            log: EventLog::with_capacity_limit(self.event_capacity),
            observers: self.observers,
            drift: self.drift,
            drift_steps,
            baselines,
            invalidation: self.invalidation,
            best_k: self.best_k.max(1),
            plan_memo: self.plan_memo,
            sharding: self.sharding,
            plan_cfg_fp,
            default_strategy_fp,
            exec_ns: 0,
            plan_ns: 0,
        })
    }
}

/// The event-driven scheduling service (see the crate docs for the
/// lifecycle).
///
/// ```
/// use qucp_circuit::library;
/// use qucp_device::ibm;
/// use qucp_runtime::{JobRequest, Service};
///
/// # fn main() -> Result<(), qucp_runtime::RuntimeError> {
/// let mut service = Service::builder()
///     .device(ibm::toronto())
///     .max_parallel(2)
///     .default_shots(256)
///     .build()?;
/// for i in 0..4 {
///     let circuit = library::by_name("bell").unwrap().circuit();
///     service.submit(JobRequest::new(circuit, i as f64 * 100.0))?;
/// }
/// let report = service.run_until_drained()?;
/// assert_eq!(report.job_results.len(), 4);
/// assert!(report.stats.batches <= 4);
/// # Ok(())
/// # }
/// ```
pub struct Service {
    strategy: Strategy,
    policy: Box<dyn AdmissionPolicy>,
    routing: Box<dyn RoutingPolicy>,
    cfg: RuntimeConfig,
    efs_gate: EfsGate,
    default_shots: usize,
    registry: DeviceRegistry,
    states: Vec<DeviceState>,
    /// FIFO-sorted (arrival, seq) queue of admitted jobs, behind the
    /// linear/indexed seam (see [`QueueIndexing`]).
    pending: PendingStore,
    next_seq: usize,
    batches: Vec<BatchReport>,
    /// Results by submission index; `None` until the job's batch ran.
    /// This is the O(1) seq-indexed completed-results store: the
    /// service keeps the canonical copy for the end-of-run
    /// [`ServiceReport`] even after a claim — eviction would change the
    /// drained report, which is bit-for-bit pinned.
    results: Vec<Option<JobResult>>,
    /// Claim flags parallel to `results`: set by the first successful
    /// [`Service::take_result`], after which the ticket's per-call copy
    /// is spent (later takes return `None`).
    claimed: Vec<bool>,
    /// Completed tickets not yet handed out by [`Service::tick`].
    unreported: Vec<(f64, JobTicket)>,
    /// Keyed priority index over device clocks (`None` on the
    /// [`QueueIndexing::Linear`] ablation path, which keeps the seed's
    /// O(D) min scan).
    clock_index: Option<ClockIndex>,
    /// Cross-batch memo of the pure planning probes (see [`RouteCache`]).
    route_cache: RouteCache,
    log: EventLog,
    observers: Vec<Box<dyn EventObserver>>,
    /// The fleet-wide calibration drift process (`None` = frozen
    /// fleet). Temporarily `take`n during [`Service::advance_drift`].
    drift: Option<Box<dyn DriftModel>>,
    /// Per-device count of drift steps already applied.
    drift_steps: Vec<u64>,
    /// Per-device baseline snapshots (reset targets of drift-scheduled
    /// recalibrations); populated iff a drift model is attached. An
    /// explicit [`Service::recalibrate`] moves the baseline too — the
    /// newest official snapshot is what a reset restores.
    baselines: Option<Vec<(Calibration, CrosstalkModel)>>,
    /// How the route cache reacts to epoch bumps.
    invalidation: CacheInvalidation,
    /// Top-k speculative planning width (1 = sequential).
    best_k: usize,
    /// Whether committed plans are memoized across batches.
    plan_memo: PlanMemo,
    /// Serial or per-group-sharded batch execution.
    sharding: DispatchSharding,
    /// Fingerprint of the immutable plan-key bits (EFS gate mode +
    /// optimize flag), computed once at build.
    plan_cfg_fp: u64,
    /// Fingerprint of the service's default strategy; overridden heads
    /// fingerprint their own strategy per dispatch.
    default_strategy_fp: u64,
    /// Cumulative wall-clock nanoseconds spent *executing* batches
    /// (trajectory simulation), as opposed to dispatch bookkeeping.
    exec_ns: u64,
    /// Cumulative wall-clock nanoseconds spent *planning* batches
    /// (mapping/partitioning in [`plan_gated_members`]); under best-k
    /// speculation the per-thread durations are summed.
    plan_ns: u64,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("devices", &self.registry.len())
            .field("strategy", &self.strategy.name)
            .field("policy", &self.policy)
            .field("routing", &self.routing)
            .field("cfg", &self.cfg)
            .field("efs_gate", &self.efs_gate)
            .field("pending", &self.pending.len())
            .field("batches", &self.batches.len())
            .finish_non_exhaustive()
    }
}

/// Observable statistics of the service's cross-batch planning cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteCacheStats {
    /// Probes answered from the cache.
    pub hits: usize,
    /// Probes computed and inserted.
    pub misses: usize,
    /// Entries currently cached.
    pub entries: usize,
    /// Entries dropped by calibration-epoch invalidations (0 on a
    /// frozen fleet, and always 0 under
    /// [`CacheInvalidation::Never`]).
    pub invalidated: usize,
    /// Whole-plan cache hits: batches whose committed plan was replayed
    /// from memo instead of re-derived (always 0 under
    /// [`PlanMemo::Never`]).
    pub plan_hits: usize,
    /// Whole-plan cache misses: batches planned fresh with memoization
    /// enabled (always 0 under [`PlanMemo::Never`], which does not
    /// consult the cache at all).
    pub plan_misses: usize,
    /// Whole-plan entries currently cached.
    pub plan_entries: usize,
    /// Whole-plan entries dropped by calibration-epoch invalidations.
    /// Epochs also live in the plan *key*, so this is pure garbage
    /// collection — a stale-epoch plan can never replay even under
    /// [`CacheInvalidation::Never`].
    pub plan_invalidated: usize,
}

/// Cross-batch memo of the planning probes the dispatch loop repeats
/// for similar jobs: the routing policy's solo-partition score and the
/// head-only EFS gate's copy count. Both are pure functions of
/// *(device, circuit shape, partition policy[, threshold])* **at a
/// fixed calibration epoch**: an entry is valid for exactly one epoch
/// of its device, and the service drops a device's entries whenever
/// its epoch bumps (recalibration or a changing drift step) under the
/// default [`CacheInvalidation::EpochAware`] protocol. A frozen fleet
/// never bumps, so its entries live for the service's lifetime —
/// bit-for-bit the pre-live-fleet behaviour.
#[derive(Debug, Default)]
struct RouteCache {
    /// Solo-best EFS partition score of a circuit shape on a device;
    /// `None` records — and caches — "no placement on this chip".
    solo: HashMap<(usize, u64, u64), Option<f64>>,
    /// Head-only EFS-gate copy counts, additionally keyed by the
    /// threshold bits. Planning errors are cached alongside successes:
    /// the probe is deterministic either way.
    head_cap: HashMap<(usize, u64, u64, u64), Result<usize, CoreError>>,
    /// Whole committed plans by `(device, plan fingerprint)` — the
    /// fingerprint folds in the device's calibration epoch, the ordered
    /// member shapes, the head's effective strategy, the gate
    /// mode/optimize bits, and (in the batch-gate modes) the member
    /// thresholds, i.e. every input [`plan_gated_members`] consults. A
    /// hit skips planning entirely: the shrink *trace* replays against
    /// the current members' ids and the [`PlannedWorkload`] is shared
    /// clone-free behind its `Arc`. `JobUnplaceable` outcomes are
    /// cached alongside successes (planning is deterministic either
    /// way); hard [`RuntimeError::Core`] outcomes are not.
    plans: HashMap<(usize, u64), PlanEntry>,
    hits: usize,
    misses: usize,
    invalidated: usize,
    plan_hits: usize,
    plan_misses: usize,
    plan_invalidated: usize,
}

/// One memoized planning outcome (see [`RouteCache::plans`]).
#[derive(Debug, Clone)]
struct PlanEntry {
    /// The eviction trace of the original planning run: `(position,
    /// reason)` per shrink, in order. Replay applies it to the current
    /// batch's members to regenerate the surviving member list and the
    /// [`Event::BatchShrunk`] stream with current job ids.
    trace: Vec<(usize, ShrinkReason)>,
    /// The plan the surviving members committed with, or the
    /// `JobUnplaceable` source when the batch shrank to one member and
    /// still failed (the head is never evicted, so replay re-binds the
    /// error to the current head's id).
    outcome: Result<std::sync::Arc<PlannedWorkload>, CoreError>,
}

impl RouteCache {
    /// Drops every entry keyed by `device_index` (one device's epoch
    /// bumped; other devices' entries stay valid) and returns how many
    /// entries were dropped.
    fn invalidate_device(&mut self, device_index: usize) -> usize {
        let before = self.solo.len() + self.head_cap.len();
        self.solo.retain(|k, _| k.0 != device_index);
        self.head_cap.retain(|k, _| k.0 != device_index);
        let dropped = before - (self.solo.len() + self.head_cap.len());
        self.invalidated += dropped;
        let plans_before = self.plans.len();
        self.plans.retain(|k, _| k.0 != device_index);
        let plans_dropped = plans_before - self.plans.len();
        self.plan_invalidated += plans_dropped;
        dropped + plans_dropped
    }
}

/// Feeds a value's `Debug` rendering straight into a hasher without
/// allocating.
struct HashWriter<'a>(&'a mut std::collections::hash_map::DefaultHasher);

impl std::fmt::Write for HashWriter<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        std::hash::Hasher::write(self.0, s.as_bytes());
        Ok(())
    }
}

/// Fingerprint of a circuit's *shape* — width and exact gate sequence,
/// name excluded — so replicated copies (`fredkin#0`, `fredkin#1`)
/// share one cache entry per device.
fn circuit_shape_fingerprint(circuit: &Circuit) -> u64 {
    use std::fmt::Write as _;
    use std::hash::Hasher as _;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    h.write_usize(circuit.width());
    for gate in circuit.gates() {
        let _ = write!(HashWriter(&mut h), "{gate:?}");
    }
    h.finish()
}

/// Fingerprint of a partition policy — the only strategy component the
/// planning probes consult. `Debug` renders `f64` fields round-trip
/// exactly, so distinct σ values or measured crosstalk maps never
/// collide.
fn partition_policy_fingerprint(policy: &PartitionPolicy) -> u64 {
    use std::fmt::Write as _;
    use std::hash::Hasher as _;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let _ = write!(HashWriter(&mut h), "{policy:?}");
    h.finish()
}

/// Fingerprint of a *whole* strategy — unlike the probes, whole-plan
/// memoization must key every stage knob planning consults (partition
/// policy, routing crosstalk-awareness, merge serialization, σ), so the
/// full `Debug` rendering is hashed. `f64` fields render round-trip
/// exactly, so distinct strategies never alias.
fn strategy_fingerprint(strategy: &Strategy) -> u64 {
    use std::fmt::Write as _;
    use std::hash::Hasher as _;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let _ = write!(HashWriter(&mut h), "{strategy:?}");
    h.finish()
}

/// Fingerprint of the service-lifetime plan-key bits: the EFS gate mode
/// (it decides the eviction rule baked into a cached shrink trace) and
/// the optimize flag (it decides the planned gate sequences).
fn plan_cfg_fingerprint(gate: EfsGate, optimize: bool) -> u64 {
    use std::fmt::Write as _;
    use std::hash::Hasher as _;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let _ = write!(HashWriter(&mut h), "{gate:?}");
    std::hash::Hasher::write_u8(&mut h, optimize as u8);
    h.finish()
}

impl Service {
    /// Starts building a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }

    /// The device fleet.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// The admission policy's display name.
    pub fn policy_name(&self) -> &str {
        self.policy.name()
    }

    /// The routing policy's display name.
    pub fn routing_name(&self) -> &str {
        self.routing.name()
    }

    /// Statistics of the cross-batch planning cache: how many
    /// partition/candidate probes the dispatch loop answered from memo
    /// instead of recomputing. Entries are keyed by *(device, circuit
    /// shape, partition policy[, threshold])* and are valid for exactly
    /// one calibration **epoch** of their device: a
    /// [`Service::recalibrate`] or a changing [`Service::advance_drift`]
    /// step bumps the device's epoch and (under the default
    /// [`CacheInvalidation::EpochAware`] mode) drops that device's
    /// entries, counted in [`RouteCacheStats::invalidated`]. On a
    /// frozen fleet epochs never bump and entries live for the
    /// service's lifetime.
    pub fn route_cache_stats(&self) -> RouteCacheStats {
        RouteCacheStats {
            hits: self.route_cache.hits,
            misses: self.route_cache.misses,
            entries: self.route_cache.solo.len() + self.route_cache.head_cap.len(),
            invalidated: self.route_cache.invalidated,
            plan_hits: self.route_cache.plan_hits,
            plan_misses: self.route_cache.plan_misses,
            plan_entries: self.route_cache.plans.len(),
            plan_invalidated: self.route_cache.plan_invalidated,
        }
    }

    /// A device's current calibration epoch (see
    /// [`DeviceRegistry::epoch`]).
    pub fn device_epoch(&self, device: DeviceId) -> u64 {
        self.registry.epoch(device)
    }

    /// Installs a fresh calibration snapshot on a device — the live
    /// fleet's "daily recalibration arrived" entry point.
    ///
    /// The snapshot is **validated before it can touch anything**: a
    /// snapshot with NaN/infinite entries, the wrong qubit count or
    /// missing link entries is rejected with a typed error and the
    /// device, its epoch and the planning cache are left exactly as
    /// they were. On success the device's calibration epoch bumps, the
    /// device's cached planning probes are dropped (under
    /// [`CacheInvalidation::EpochAware`]), an
    /// [`Event::DeviceRecalibrated`] is emitted, and — when a drift
    /// model is attached — the new snapshot becomes the baseline that
    /// drift-scheduled recalibration resets restore. Returns the new
    /// epoch.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidCalibration`] with the disqualifying
    /// [`CalibrationFault`].
    ///
    /// # Panics
    ///
    /// Panics if `device` came from a different registry and is out of
    /// range.
    pub fn recalibrate(
        &mut self,
        device: DeviceId,
        calibration: Calibration,
    ) -> Result<u64, RuntimeError> {
        let dev = self.registry.get(device);
        let fault = if calibration.num_qubits() != dev.num_qubits() {
            Some(CalibrationFault::QubitCountMismatch {
                expected: dev.num_qubits(),
                got: calibration.num_qubits(),
            })
        } else if !calibration.all_finite() {
            Some(CalibrationFault::NonFinite)
        } else if !calibration.covers(dev.topology()) {
            Some(CalibrationFault::MissingLinks)
        } else {
            None
        };
        if let Some(fault) = fault {
            return Err(RuntimeError::InvalidCalibration {
                device: dev.name().to_string(),
                fault,
            });
        }
        let name = dev.name().to_string();
        if let Some(baselines) = &mut self.baselines {
            baselines[device.index()].0 = calibration.clone();
        }
        let epoch = self.registry.recalibrate(device, calibration);
        self.bump_epoch(device.index(), name, epoch);
        Ok(epoch)
    }

    /// Advances the fleet's calibration drift to simulated time `now`
    /// (ns): for every device, applies each drift step the attached
    /// [`DriftModel`] schedules between the last advance and `now` —
    /// [`DriftEvent::Drift`] steps perturb the calibration state,
    /// [`DriftEvent::Recalibrate`] steps restore the device's baseline
    /// snapshot. Each step that actually changes a device bumps its
    /// calibration epoch, drops its cached planning probes (under the
    /// default [`CacheInvalidation::EpochAware`] mode) and emits an
    /// [`Event::DeviceRecalibrated`]; no-op steps (zero-sigma walks, or
    /// resets of an undrifted device) leave epoch, cache and telemetry
    /// untouched, so a zero-drift service stays bit-for-bit a frozen
    /// one. Returns the number of epoch bumps.
    ///
    /// Drift is advanced **explicitly**, never implicitly by
    /// [`Service::tick`] — [`Service::run_until_drained`] jumps to an
    /// infinite horizon, which is a fine dispatch bound but not a
    /// meaningful drift time. Interleave `advance_drift(t)` with
    /// `tick(t)` to co-evolve queue and noise; time never runs
    /// backwards (an earlier `now` than a previous advance is a
    /// no-op). Without an attached model this is a no-op returning 0.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NonFiniteTime`] unless `now` is finite;
    /// [`RuntimeError::DriftHorizonTooFar`] when the advance would
    /// schedule more than [`MAX_DRIFT_STEPS_PER_ADVANCE`] steps per
    /// device (a mismatched clock unit or a degenerate interval —
    /// every step must actually run or the noise trajectory would
    /// fork, so runaway advances are refused, not truncated; state is
    /// untouched). [`RuntimeError::InvalidCalibration`] when a
    /// misbehaving model produces NaN/infinite values — the same
    /// validation gate [`Service::recalibrate`] applies to explicit
    /// snapshots: the offending step is rolled back (no epoch bump, no
    /// cache drop) and that device stops just before it, while earlier
    /// steps and other devices stand, so a fixed model can resume
    /// exactly where drift halted.
    pub fn advance_drift(&mut self, now: f64) -> Result<usize, RuntimeError> {
        if !now.is_finite() {
            return Err(RuntimeError::NonFiniteTime { value: now });
        }
        // Taken (not borrowed) so the loop below can mutate registry,
        // cache and event log while consulting the model.
        let Some(model) = self.drift.take() else {
            return Ok(0);
        };
        let target = model.steps_at(now);
        let applied_min = self.drift_steps.iter().copied().min().unwrap_or(0);
        if target.saturating_sub(applied_min) > MAX_DRIFT_STEPS_PER_ADVANCE {
            self.drift = Some(model);
            return Err(RuntimeError::DriftHorizonTooFar {
                steps: target - applied_min,
                max: MAX_DRIFT_STEPS_PER_ADVANCE,
            });
        }
        let mut bumps = 0usize;
        let mut fault: Option<RuntimeError> = None;
        'devices: for index in 0..self.registry.len() {
            let applied = self.drift_steps[index];
            if target <= applied {
                continue;
            }
            let id = DeviceId::from_index(index);
            let mut device_bumped = false;
            for step in applied + 1..=target {
                let new_epoch = match model.event_at(step) {
                    // Applied against a scratch copy so a model that
                    // produces NaN/infinity can be rejected with the
                    // live state untouched — the same gate
                    // `recalibrate` applies to explicit snapshots.
                    DriftEvent::Drift => {
                        let mut poisoned = false;
                        let epoch = self.registry.mutate_calibration(id, |cal, xt| {
                            let (mut next_cal, mut next_xt) = (cal.clone(), xt.clone());
                            if !model.apply_step(step, index as u64, &mut next_cal, &mut next_xt) {
                                return false;
                            }
                            if next_cal.all_finite() && next_xt.all_finite() {
                                *cal = next_cal;
                                *xt = next_xt;
                                true
                            } else {
                                poisoned = true;
                                false
                            }
                        });
                        if poisoned {
                            fault = Some(RuntimeError::InvalidCalibration {
                                device: self.registry.device_at(index).name().to_string(),
                                fault: CalibrationFault::NonFinite,
                            });
                            // Steps up to the poisoned one stand; the
                            // device stays at `step - 1` so a fixed
                            // model could resume exactly there.
                            self.drift_steps[index] = step - 1;
                            if device_bumped && self.invalidation == CacheInvalidation::EpochAware {
                                self.route_cache.invalidate_device(index);
                            }
                            continue 'devices;
                        }
                        epoch
                    }
                    // Restore-by-clone only when the device actually
                    // drifted away from its baseline; the common
                    // nothing-changed reset costs two comparisons.
                    DriftEvent::Recalibrate => {
                        let (base_cal, base_xt) = &self
                            .baselines
                            .as_ref()
                            .expect("a drifting service always snapshots baselines at build")
                            [index];
                        self.registry.mutate_calibration(id, |cal, xt| {
                            if cal == base_cal && xt == base_xt {
                                false
                            } else {
                                *cal = base_cal.clone();
                                *xt = base_xt.clone();
                                true
                            }
                        })
                    }
                };
                if let Some(epoch) = new_epoch {
                    // One telemetry event per epoch bump; the cache
                    // drop is coalesced to once per device below (no
                    // dispatch can repopulate it mid-advance).
                    let device = self.registry.device_at(index).name().to_string();
                    self.emit(Event::DeviceRecalibrated { device, epoch });
                    device_bumped = true;
                    bumps += 1;
                }
            }
            self.drift_steps[index] = target;
            if device_bumped && self.invalidation == CacheInvalidation::EpochAware {
                self.route_cache.invalidate_device(index);
            }
        }
        self.drift = Some(model);
        match fault {
            Some(err) => Err(err),
            None => Ok(bumps),
        }
    }

    /// The epoch-bump fanout: per-device cache invalidation (under the
    /// epoch-aware mode) plus telemetry.
    fn bump_epoch(&mut self, device_index: usize, device_name: String, epoch: u64) {
        if self.invalidation == CacheInvalidation::EpochAware {
            self.route_cache.invalidate_device(device_index);
        }
        self.emit(Event::DeviceRecalibrated {
            device: device_name,
            epoch,
        });
    }

    /// Jobs admitted but not yet dispatched.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Batches dispatched so far (the drained report's
    /// `stats.batches`). Campaign accounting reads this around its
    /// rounds to attribute batch counts.
    pub fn batches_run(&self) -> usize {
        self.batches.len()
    }

    /// The telemetry log accumulated so far.
    pub fn events(&self) -> &[Event] {
        self.log.events()
    }

    /// The full event log (query helpers included).
    pub fn event_log(&self) -> &EventLog {
        &self.log
    }

    /// The result of a ticket's job, once its batch has run.
    ///
    /// A non-consuming peek: it ignores the claim state and never
    /// spends the ticket. Use [`Service::take_result`] for the
    /// exactly-once retrieval campaigns rely on.
    pub fn result(&self, ticket: JobTicket) -> Option<&JobResult> {
        self.results.get(ticket.seq).and_then(Option::as_ref)
    }

    /// Claims a ticket's result: `None` while the batch has not run,
    /// the [`JobResult`] **exactly once** after it has, and `None`
    /// again for every later call on the same ticket.
    ///
    /// Ownership contract: the caller owns the returned copy; the
    /// service retains the canonical result in its seq-indexed
    /// completed store for the end-of-run [`ServiceReport`], so
    /// claiming mid-stream never changes the drained report — the
    /// claim flag, not eviction, is what spends the ticket
    /// (bit-for-bit pinned by the campaign proptests). Claiming is
    /// also independent of the completion *notifications*: a ticket
    /// claimed between ticks is still reported exactly once by
    /// [`Service::tick`].
    pub fn take_result(&mut self, ticket: &JobTicket) -> Option<JobResult> {
        let result = self.results.get(ticket.seq).and_then(Option::as_ref)?;
        if std::mem::replace(&mut self.claimed[ticket.seq], true) {
            return None;
        }
        Some(result.clone())
    }

    /// Admits a job into the pending queue.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NonFiniteTime`] on a NaN or infinite arrival,
    /// [`RuntimeError::EmptyCircuit`] on a zero-width circuit,
    /// [`RuntimeError::ZeroShots`] on a zero effective shot budget,
    /// [`RuntimeError::InvalidThreshold`] on a NaN, infinite or
    /// negative per-job threshold.
    pub fn submit(&mut self, request: JobRequest) -> Result<JobTicket, RuntimeError> {
        if !request.arrival.is_finite() {
            return Err(RuntimeError::NonFiniteTime {
                value: request.arrival,
            });
        }
        if request.circuit.width() == 0 {
            return Err(RuntimeError::EmptyCircuit);
        }
        let shots = request.shots.unwrap_or(self.default_shots);
        if shots == 0 {
            return Err(RuntimeError::ZeroShots);
        }
        if let Some(t) = request.fidelity_threshold {
            if !t.is_finite() || t < 0.0 {
                return Err(RuntimeError::InvalidThreshold { value: t });
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = request.id.unwrap_or(seq as u64);
        self.emit(Event::JobSubmitted {
            job_id: id,
            seq,
            arrival: request.arrival,
            width: request.circuit.width(),
            shots,
        });
        // Ties on arrival keep submission order: every existing job
        // with the same arrival has a smaller seq and stays in front
        // (the store's insert rule, identical on both queue paths).
        let width = request.circuit.width();
        let gates = request.circuit.gate_count();
        let depth = request.circuit.depth();
        // The shape fingerprint keys every plan/probe cache lookup the
        // job will ever be part of; hashing once at submit (O(gates),
        // like the depth above) beats re-hashing per dispatch.
        let shape = circuit_shape_fingerprint(&request.circuit);
        self.pending.insert(Pending {
            seq,
            id,
            circuit: request.circuit,
            width,
            gates,
            depth,
            shape,
            shots,
            arrival: request.arrival,
            strategy: request.strategy,
            fidelity_threshold: request.fidelity_threshold,
            shot_parallelism: request.shot_parallelism,
            trajectory_kernel: request.trajectory_kernel,
            routing: request.routing,
            skips: 0,
        });
        self.results.push(None);
        self.claimed.push(false);
        Ok(JobTicket { seq, id })
    }

    /// Advances simulated time to `now`: dispatches batches **in
    /// admission order** while the next batch can start at or before
    /// `now`, and returns the tickets of jobs whose batches *completed*
    /// by `now` (each reported exactly once, ordered by completion
    /// time).
    ///
    /// Head-of-line semantics: the admission policy decides the next
    /// batch; when that batch must start after `now` (e.g. its only
    /// admitting device is still busy), later batches wait for a later
    /// tick even if a device is free for them — ticking never reorders
    /// dispatches. Every tick sequence therefore produces a prefix of
    /// [`Service::run_until_drained`]'s dispatch sequence, and the
    /// final schedule is identical; only notification timing differs.
    ///
    /// **Time contract** (deliberately asymmetric to
    /// [`Service::submit`], which requires *finite* arrivals): a tick
    /// horizon is a comparison bound, not a timestamp, so the infinities
    /// are meaningful — `now = f64::INFINITY` drains everything
    /// pending, `now = f64::NEG_INFINITY` is a no-op (nothing can start
    /// or complete by then). Only NaN is rejected, because no dispatch
    /// decision can be ordered against it. See
    /// [`RuntimeError::NonFiniteTime`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NonFiniteTime`] if `now` is NaN; otherwise the
    /// dispatch errors of [`Service::run_until_drained`].
    pub fn tick(&mut self, now: f64) -> Result<Vec<JobTicket>, RuntimeError> {
        if now.is_nan() {
            return Err(RuntimeError::NonFiniteTime { value: now });
        }
        self.dispatch_until(now)?;
        let mut done: Vec<(f64, JobTicket)> = Vec::new();
        self.unreported.retain(|&(completion, ticket)| {
            if completion <= now {
                done.push((completion, ticket));
                false
            } else {
                true
            }
        });
        done.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.seq.cmp(&b.1.seq)));
        Ok(done.into_iter().map(|(_, t)| t).collect())
    }

    /// Advances dispatch to `now` without consuming the completion
    /// queue: the same head-of-line dispatch rule and time contract as
    /// [`Service::tick`], but tickets of batches completed by `now`
    /// stay queued and are still reported (exactly once) by the next
    /// `tick`. This is the entry point for a background driver — e.g.
    /// the daemon's wall-clock loop — that advances time on behalf of
    /// clients: batches keep flowing, while completion notifications
    /// keep their report-exactly-once contract with whoever calls
    /// `tick`.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Service::tick`].
    pub fn advance_dispatch(&mut self, now: f64) -> Result<(), RuntimeError> {
        if now.is_nan() {
            return Err(RuntimeError::NonFiniteTime { value: now });
        }
        self.dispatch_until(now)
    }

    /// Serves every pending job to completion and reports fleet-wide
    /// and per-device statistics, batches, per-job results and the
    /// telemetry log.
    ///
    /// Deterministic: the report depends only on the submissions and
    /// the configuration (including seed), never on thread timing. More
    /// jobs may be submitted and drained afterwards; statistics keep
    /// accumulating.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::JobUnplaceable`] when a job cannot run alone on
    /// any registered device; [`RuntimeError::Core`] on backend
    /// failures.
    pub fn run_until_drained(&mut self) -> Result<ServiceReport, RuntimeError> {
        self.dispatch_until(f64::INFINITY)?;
        self.unreported.clear();
        Ok(self.drained_report())
    }

    /// Dispatches every batch that can start at or before `limit`.
    ///
    /// The loop is split into a **staging** pass ([`Service::stage_one`]
    /// — every scheduling decision and queue/clock mutation, batch
    /// events buffered) and a **finishing** pass
    /// ([`Service::finish_batch`] — execution results folded into
    /// results, statistics and the event log, always in batch order).
    /// Under [`DispatchSharding::Single`] each batch finishes before
    /// the next one stages, reproducing the seed loop exactly; under
    /// [`DispatchSharding::Grouped`] all batches stage first, each
    /// device group's batches execute on their own scoped worker, and
    /// the finishes replay in global batch order — bit-for-bit the same
    /// observable sequence, because no staging decision ever reads an
    /// execution result (completion times are plan-derived).
    fn dispatch_until(&mut self, limit: f64) -> Result<(), RuntimeError> {
        match self.sharding {
            DispatchSharding::Single => {
                while let Some(staged) = self.stage_one(limit, 0)? {
                    let exec_started = std::time::Instant::now();
                    let results = execute_members(
                        &staged.pipeline,
                        &staged.device,
                        &staged.plan,
                        &staged.shots,
                        staged.batch_seed,
                        self.cfg.mode,
                        &staged.parallelism,
                        &staged.kernels,
                    );
                    self.exec_ns = self
                        .exec_ns
                        .saturating_add(exec_started.elapsed().as_nanos() as u64);
                    self.finish_batch(staged, results?);
                }
                Ok(())
            }
            DispatchSharding::Grouped => {
                // Stage everything first: admission, routing and
                // planning decisions are inherently sequential (each
                // reads the queue/clock state the previous one wrote).
                // A staging error behaves like the serial loop's: the
                // batches staged before it still execute and finish.
                let mut staged: Vec<StagedBatch> = Vec::new();
                let mut stage_err: Option<RuntimeError> = None;
                loop {
                    match self.stage_one(limit, staged.len()) {
                        Ok(Some(batch)) => staged.push(batch),
                        Ok(None) => break,
                        Err(e) => {
                            stage_err = Some(e);
                            break;
                        }
                    }
                }
                // Execute per group: one worker per non-empty group,
                // each running its own batches in batch order.
                let mode = self.cfg.mode;
                let mut by_group: std::collections::BTreeMap<usize, Vec<usize>> =
                    std::collections::BTreeMap::new();
                for (i, batch) in staged.iter().enumerate() {
                    by_group.entry(batch.group).or_default().push(i);
                }
                let mut slots: Vec<Option<Result<Vec<ProgramResult>, RuntimeError>>> =
                    staged.iter().map(|_| None).collect();
                let mut exec_ns = 0u64;
                std::thread::scope(|scope| {
                    let staged = &staged;
                    let handles: Vec<_> = by_group
                        .values()
                        .map(|indices| {
                            scope.spawn(move || {
                                indices
                                    .iter()
                                    .map(|&i| {
                                        let b = &staged[i];
                                        let started = std::time::Instant::now();
                                        let r = execute_members(
                                            &b.pipeline,
                                            &b.device,
                                            &b.plan,
                                            &b.shots,
                                            b.batch_seed,
                                            mode,
                                            &b.parallelism,
                                            &b.kernels,
                                        );
                                        (i, r, started.elapsed().as_nanos() as u64)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for handle in handles {
                        let outcomes = handle
                            .join()
                            .unwrap_or_else(|p| std::panic::resume_unwind(p));
                        for (i, result, ns) in outcomes {
                            exec_ns = exec_ns.saturating_add(ns);
                            slots[i] = Some(result);
                        }
                    }
                });
                self.exec_ns = self.exec_ns.saturating_add(exec_ns);
                // Deterministic merge: finish in global batch order,
                // surfacing the first batch-order execution error
                // (matching which error the serial loop would report).
                for (batch, slot) in staged.into_iter().zip(slots) {
                    let results = slot.expect("every staged batch was executed")?;
                    self.finish_batch(batch, results);
                }
                match stage_err {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
        }
    }

    /// Emits an event to every observer and the log.
    fn emit(&mut self, event: Event) {
        for observer in &mut self.observers {
            observer.on_event(&event);
        }
        self.log.push(event);
    }

    /// The stored pending job with submission index `seq`; a job that
    /// vanished from the store is an internal invariant violation
    /// surfaced as a typed [`RuntimeError::QueueCorrupted`] instead of
    /// a panic.
    fn pending_by_seq(&self, seq: usize) -> Result<&Pending, RuntimeError> {
        self.pending
            .get(seq)
            .ok_or(RuntimeError::QueueCorrupted { seq })
    }

    /// Stages the next batch if one can start at or before `limit`:
    /// every scheduling decision (head choice, routing, packing,
    /// planning through the plan cache), every queue/clock mutation,
    /// and the batch's full event block — buffered on the returned
    /// [`StagedBatch`], not yet emitted. Execution and the event/stat
    /// fold happen in [`Service::finish_batch`]. `in_flight` is the
    /// number of staged-but-unfinished batches, so `batch_index` stays
    /// dense while [`DispatchSharding::Grouped`] defers the
    /// [`BatchReport`] pushes.
    fn stage_one(
        &mut self,
        limit: f64,
        in_flight: usize,
    ) -> Result<Option<StagedBatch>, RuntimeError> {
        let Some(t_min) = self.pending.first_arrival() else {
            return Ok(None);
        };

        // Earliest-free device (free time, then registration order):
        // the admission horizon at which the head is selected. Head
        // choice is the *admission* policy's business and always
        // happens at this horizon; the *routing* policy only ranks the
        // admitting candidates afterwards. The indexed path answers
        // from the clock index in O(log D); the linear ablation path
        // keeps the seed's O(D) min scan — both pick the same device
        // (total_cmp order, first strict minimum), pinned by the fleet
        // equivalence proptests. The full (clock, index) sort this used
        // to do is unnecessary, because the ranked candidates below
        // sort by a total key of their own.
        let d0 = match &self.clock_index {
            Some(index) => index.min_device(),
            None => {
                let mut d0 = 0;
                for d in 1..self.registry.len() {
                    if self.states[d].clock.total_cmp(&self.states[d0].clock)
                        == std::cmp::Ordering::Less
                    {
                        d0 = d;
                    }
                }
                d0
            }
        };
        let now0 = self.states[d0].clock.max(t_min);
        self.pending.prepare(now0, None);
        let (head_seq, head_arrival) = {
            let arrived0 = self.pending.arrived(now0);
            let head_pos0 = self.policy.choose_head(arrived0);
            (arrived0[head_pos0].seq, arrived0[head_pos0].arrival)
        };
        let head = self.pending_by_seq(head_seq)?;
        let head_width = head.width;
        let head_shape = head.shape;
        let head_circuit = head.circuit.clone();
        let head_id = head.id;
        let head_has_strategy_override = head.strategy.is_some();
        let head_strategy = head
            .strategy
            .clone()
            .unwrap_or_else(|| self.strategy.clone());
        let head_threshold = head.fidelity_threshold.or(self.cfg.fidelity_threshold);
        // The head's routing override (if any) routes this batch; a
        // `Copy` value so the ranked loop below can keep calling
        // `&mut self` probe helpers.
        let head_routing: Option<RoutingChoice> = head.routing;

        // Rank the admitting candidates with the routing policy; if
        // none admits the head, probe the widest chip so the precise
        // placement error surfaces (matching the seed scheduler). The
        // width-bucketed index hands back only the admitting devices —
        // in (width, registration) order, which is fine: the ranked
        // sort below uses the total key (score, free time,
        // registration), so candidate input order never matters.
        let admitting: Vec<usize> = self
            .registry
            .admitting_bucket(head_width)
            .iter()
            .map(|&(_, d)| d)
            .collect();
        let probe_widest = admitting.is_empty();
        // Cache keys cost an O(gates) hash of the head circuit, so they
        // are only computed when a probing path will consult the cache
        // — the default EarliestFree/no-threshold dispatch stays
        // exactly as cheap as before the routing seam.
        let wants_score = match &head_routing {
            Some(choice) => choice.wants_partition_score(),
            None => self.routing.wants_partition_score(),
        };
        let gate_probes =
            !probe_widest && self.efs_gate == EfsGate::HeadOnly && head_threshold.is_some();
        let (shape, policy_fp) = if wants_score || gate_probes {
            (
                head_shape,
                partition_policy_fingerprint(&head_strategy.partition),
            )
        } else {
            (0, 0)
        };
        // The head's effective-strategy fingerprint keys the plan
        // cache; the common no-override case reads the fingerprint
        // computed once at build.
        let strategy_fp = match self.plan_memo {
            PlanMemo::Never => 0,
            PlanMemo::EpochKeyed if head_has_strategy_override => {
                strategy_fingerprint(&head_strategy)
            }
            PlanMemo::EpochKeyed => self.default_strategy_fp,
        };
        let (candidates, route_scores): (Vec<usize>, Vec<f64>) = if probe_widest {
            let widest = self.registry.widest().expect("fleet is non-empty").index();
            (vec![widest], vec![f64::INFINITY])
        } else {
            let starts: Vec<f64> = admitting
                .iter()
                .map(|&d| self.states[d].clock.max(head_arrival))
                .collect();
            let best_start = starts.iter().copied().fold(f64::INFINITY, f64::min);
            let head_cx_count = head_circuit.cx_count();
            // (score, free time, registration index): scores compare
            // with `total_cmp` (NaN sorts last) and ties always fall
            // back to the earliest-free order, so any policy routes
            // deterministically.
            let mut ranked: Vec<(f64, f64, usize)> = Vec::with_capacity(admitting.len());
            for (i, &d) in admitting.iter().enumerate() {
                let partition_score = if wants_score {
                    self.cached_solo_score(
                        d,
                        &head_circuit,
                        &head_strategy.partition,
                        shape,
                        policy_fp,
                    )
                } else {
                    None
                };
                let query = RouteQuery {
                    device: self.registry.device_at(d),
                    device_index: d,
                    free_at: self.states[d].clock,
                    start: starts[i],
                    best_start,
                    head_width,
                    head_cx_count,
                    partition_score,
                };
                let score = match &head_routing {
                    Some(choice) => choice.score(&query),
                    None => self.routing.score(&query),
                };
                ranked.push((score, self.states[d].clock, d));
            }
            ranked.sort_by(|a, b| {
                a.0.total_cmp(&b.0)
                    .then(a.1.total_cmp(&b.1))
                    .then(a.2.cmp(&b.2))
            });
            (
                ranked.iter().map(|r| r.2).collect(),
                ranked.iter().map(|r| r.0).collect(),
            )
        };

        // Assembling a pipeline is cheap (it boxes four stage objects),
        // so each dispatch builds one for the head's effective strategy
        // rather than fighting the borrow checker over a cached copy.
        let pipeline = Pipeline::from_strategy(&head_strategy);
        let batch_index = self.batches.len() + in_flight;

        // Best-k speculation: precompute the top-k candidates' pack and
        // plan outcomes (planning concurrently) before walking the
        // ranking. The walk below consumes precomputed outcomes for
        // ranks < k and falls back to the inline sequential path beyond
        // — either way the committed winner is the first ranked
        // candidate whose plan succeeds.
        let k = if !probe_widest && self.best_k > 1 && candidates.len() > 1 {
            self.best_k.min(candidates.len())
        } else {
            1
        };
        let mut spec: Vec<Option<SpecOutcome>> = if k > 1 {
            self.speculate(
                &candidates[..k],
                &pipeline,
                head_seq,
                head_arrival,
                head_id,
                &head_circuit,
                &head_strategy,
                strategy_fp,
                head_threshold,
                shape,
                policy_fp,
                batch_index,
            )
        } else {
            Vec::new()
        };

        let mut last_unplaceable: Option<RuntimeError> = None;
        for (rank, &d) in candidates.iter().enumerate() {
            let start = self.states[d].clock.max(head_arrival);
            if start > limit {
                // Head-of-line across the fleet: when the policy's
                // preferred viable candidate cannot start by `limit`,
                // the whole dispatch defers to a later tick instead of
                // falling through to a lower-ranked chip — a
                // finite-horizon tick sequence must stay a prefix of
                // the drain schedule, and planning failures (which are
                // horizon-independent) are the only way down the
                // ranking. Speculative outcomes (hard errors included)
                // for this and lower ranks are discarded unseen.
                return Ok(None);
            }
            let outcome = match spec.get_mut(rank).and_then(Option::take) {
                Some(outcome) => outcome,
                None => {
                    // Sequential path: the k = 1 default, and every
                    // rank beyond the speculation window.
                    //
                    // Head-only EFS gate (legacy Fig. 4 behaviour):
                    // probe the admissible copy count of the head
                    // circuit before packing, memoized across batches
                    // per (device, shape, threshold).
                    let cap_probe = match (self.efs_gate, head_threshold) {
                        (EfsGate::HeadOnly, Some(threshold)) if !probe_widest => self
                            .cached_head_cap(
                                d,
                                &head_circuit,
                                threshold,
                                &head_strategy,
                                shape,
                                policy_fp,
                            )
                            .map(|c| c.max(1)),
                        _ => Ok(self.cfg.max_parallel),
                    };
                    match cap_probe {
                        Ok(cap) => {
                            let qubits = self.registry.device_at(d).num_qubits();
                            let pack = self.pack_candidate(
                                d,
                                qubits,
                                cap,
                                head_seq,
                                head_arrival,
                                &head_strategy,
                                probe_widest,
                            )?;
                            let members = self.plan_members(&pack.picks_seqs)?;
                            let plan = self.plan_batch(
                                &pipeline,
                                d,
                                batch_index,
                                &head_strategy,
                                strategy_fp,
                                members,
                            );
                            SpecOutcome::Planned {
                                pack,
                                plan: Box::new(plan),
                            }
                        }
                        Err(
                            e @ (CoreError::PartitionUnavailable { .. }
                            | CoreError::ProgramTooWide { .. }),
                        ) => SpecOutcome::Unplaceable(RuntimeError::JobUnplaceable {
                            job_id: head_id,
                            source: e,
                        }),
                        Err(e) => return Err(RuntimeError::Core(e)),
                    }
                }
            };
            let (pack, planned) = match outcome {
                SpecOutcome::Unplaceable(e) => {
                    last_unplaceable = Some(e);
                    continue;
                }
                SpecOutcome::Failed(e) => return Err(e),
                SpecOutcome::Planned { pack, plan } => match *plan {
                    Ok(planned) => (pack, planned),
                    Err(e @ RuntimeError::JobUnplaceable { .. }) => {
                        last_unplaceable = Some(e);
                        continue;
                    }
                    Err(e) => return Err(e),
                },
            };
            let (plan, members, shrinks) = planned;
            debug_assert_eq!(pack.start.to_bits(), start.to_bits());

            // Cloned so the staging below can take `&mut self`; one
            // clone per dispatch, dwarfed by the batch's trajectories.
            let device = self.registry.device_at(d).clone();
            // The routing decision is recorded only for the device the
            // batch actually commits on (failed candidates leave no
            // trace, like their shrink events).
            // The recorded policy is the *effective* one: the head's
            // override when present, the service default otherwise.
            let mut events: Vec<Event> = Vec::with_capacity(2 + shrinks.len() + members.seqs.len());
            events.push(Event::BatchRouted {
                batch_index,
                device: device.name().to_string(),
                policy: match &head_routing {
                    Some(choice) => choice.name().to_string(),
                    None => self.routing.name().to_string(),
                },
                score: route_scores[rank],
                start,
                candidates: candidates.len(),
            });
            events.extend(shrinks);

            // Everything the execution and finish halves need, copied
            // out of the pending store before the members are removed.
            let makespan = plan.context.makespan;
            let completion = start + makespan;
            let n = members.seqs.len();
            let mut shots: Vec<usize> = Vec::with_capacity(n);
            let mut parallelism: Vec<ShotParallelism> = Vec::with_capacity(n);
            let mut kernels: Vec<TrajectoryKernel> = Vec::with_capacity(n);
            let mut job_ids: Vec<u64> = Vec::with_capacity(n);
            let mut names: Vec<String> = Vec::with_capacity(n);
            let mut widths: Vec<usize> = Vec::with_capacity(n);
            let mut waits: Vec<f64> = Vec::with_capacity(n);
            let mut turnarounds: Vec<f64> = Vec::with_capacity(n);
            for &s in &members.seqs {
                let p = self.pending_by_seq(s)?;
                shots.push(p.shots);
                parallelism.push(p.shot_parallelism.unwrap_or(self.cfg.shot_parallelism));
                kernels.push(p.trajectory_kernel.unwrap_or(self.cfg.trajectory_kernel));
                job_ids.push(p.id);
                names.push(p.circuit.name().to_string());
                widths.push(p.width);
                waits.push(start - p.arrival);
                turnarounds.push(completion - p.arrival);
            }
            events.push(Event::BatchPlanned {
                batch_index,
                device: device.name().to_string(),
                job_ids: job_ids.clone(),
                start,
                makespan,
            });
            for (pos, &seq) in members.seqs.iter().enumerate() {
                events.push(Event::JobCompleted {
                    job_id: job_ids[pos],
                    seq,
                    batch_index,
                    completion,
                    turnaround: turnarounds[pos],
                });
                self.unreported.push((
                    completion,
                    JobTicket {
                        seq,
                        id: job_ids[pos],
                    },
                ));
            }

            // The scheduling state the *next* staging decision reads
            // mutates now; statistics and the event fold wait for the
            // finish pass.
            let state = &mut self.states[d];
            let old_clock = state.clock;
            state.clock = completion;
            if let Some(index) = &mut self.clock_index {
                index.update(d, old_clock, completion);
            }
            self.pending.remove_members(&members.seqs);

            // Starvation accounting: every arrived candidate that an
            // admitted later candidate jumped over was overtaken once.
            // Jobs wider than this whole chip are exempt — they could
            // never have run here, their service is governed by a
            // device that admits them, and turning them into barriers
            // on chips they cannot use would cost throughput for no
            // fairness gain.
            let admitted: Vec<usize> = pack
                .picks_seqs
                .iter()
                .copied()
                .filter(|s| members.seqs.contains(s))
                .collect();
            let last_admitted_pos = pack
                .picks
                .iter()
                .enumerate()
                .filter(|&(j, _)| admitted.contains(&pack.picks_seqs[j]))
                .map(|(_, &pos)| pos)
                .max()
                .unwrap_or(pack.head_pos);
            for (i, &(seq, width)) in pack.pool.iter().enumerate() {
                if i < last_admitted_pos && width <= device.num_qubits() && !admitted.contains(&seq)
                {
                    self.pending.bump_skip(seq);
                }
            }
            let group = self.registry.group_of(d);
            return Ok(Some(StagedBatch {
                device_index: d,
                group,
                batch_index,
                device,
                pipeline,
                plan,
                start,
                completion,
                makespan,
                batch_seed: derive_batch_seed(self.cfg.seed, batch_index),
                member_seqs: members.seqs,
                job_ids,
                names,
                widths,
                shots,
                parallelism,
                kernels,
                waits,
                turnarounds,
                events,
            }));
        }
        Err(last_unplaceable.expect("every candidate device failed with an unplaceable error"))
    }

    /// The finish half of one batch dispatch: emits the batch's
    /// buffered event block, folds the execution results into the
    /// per-job result store and per-device statistics, and records the
    /// [`BatchReport`]. Always called in global batch order — under
    /// both sharding modes — so the event log and every floating-point
    /// accumulation sequence are bit-identical to the serial loop's.
    fn finish_batch(&mut self, staged: StagedBatch, results: Vec<ProgramResult>) {
        for event in staged.events {
            self.emit(event);
        }
        for (pos, (&seq, mut result)) in staged.member_seqs.iter().zip(results).enumerate() {
            // Re-bind the result name to the *current* member: a
            // replayed plan carries the program names of the batch it
            // was first planned for (a no-op on freshly planned
            // batches — planning preserves names).
            result.name.clear();
            result.name.push_str(&staged.names[pos]);
            let state = &mut self.states[staged.device_index];
            state.jobs += 1;
            state.total_wait += staged.waits[pos];
            state.total_turnaround += staged.turnarounds[pos];
            state.busy_qubit_time +=
                staged.widths[pos] as f64 * staged.plan.context.program_makespans[pos];
            self.results[seq] = Some(JobResult {
                job_id: staged.job_ids[pos],
                batch_index: staged.batch_index,
                start: staged.start,
                completion: staged.completion,
                waiting: staged.waits[pos],
                turnaround: staged.turnarounds[pos],
                result,
            });
        }
        self.batches.push(BatchReport {
            batch_index: staged.batch_index,
            device: staged.device.name().to_string(),
            job_ids: staged.job_ids,
            start: staged.start,
            completion: staged.completion,
            makespan: staged.makespan,
            used_qubits: staged.plan.used_qubits(),
            conflict_count: staged.plan.context.conflict_count,
        });
        let state = &mut self.states[staged.device_index];
        state.busy_time += staged.makespan;
        state.batches += 1;
    }

    /// Plans one candidate's batch through the plan cache: a hit
    /// replays the memoized outcome against the current members
    /// (re-binding shrink events and unplaceable errors to current job
    /// ids), a miss plans fresh and memoizes. Under [`PlanMemo::Never`]
    /// the cache is bypassed entirely — every batch pays the fresh
    /// planning cost the `fleet_shootout` ablation measures.
    fn plan_batch(
        &mut self,
        pipeline: &Pipeline,
        d: usize,
        batch_index: usize,
        head_strategy: &Strategy,
        strategy_fp: u64,
        members: PlanMembers,
    ) -> Result<PlannedParts, RuntimeError> {
        let fp = (self.plan_memo == PlanMemo::EpochKeyed)
            .then(|| self.plan_fingerprint(d, strategy_fp, &members));
        if let Some(fp) = fp {
            if let Some(entry) = self.route_cache.plans.get(&(d, fp)).cloned() {
                self.route_cache.plan_hits += 1;
                return replay_plan(
                    entry,
                    batch_index,
                    self.registry.device_at(d).name(),
                    members,
                );
            }
            self.route_cache.plan_misses += 1;
        }
        let plan_started = std::time::Instant::now();
        let fresh = plan_gated_members(
            pipeline,
            self.registry.device_at(d),
            batch_index,
            self.efs_gate,
            self.cfg.optimize,
            head_strategy,
            members,
        );
        self.plan_ns = self
            .plan_ns
            .saturating_add(plan_started.elapsed().as_nanos() as u64);
        self.memoize_plan(d, fp, fresh)
    }

    /// The plan-cache key of one candidate's batch: device epoch, gate
    /// mode/optimize bits, the head's effective strategy, and the
    /// ordered member shapes (plus per-member thresholds in the
    /// batch-gate modes — the only modes whose eviction decisions read
    /// them). Job ids, names and the batch index are deliberately
    /// excluded: replay re-binds all three.
    fn plan_fingerprint(&self, d: usize, strategy_fp: u64, members: &PlanMembers) -> u64 {
        use std::hash::Hasher as _;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write_u64(self.registry.epoch(DeviceId::from_index(d)));
        h.write_u64(self.plan_cfg_fp);
        h.write_u64(strategy_fp);
        h.write_usize(members.seqs.len());
        for &shape in &members.shapes {
            h.write_u64(shape);
        }
        for threshold in &members.thresholds {
            match threshold {
                Some(t) => {
                    h.write_u8(1);
                    h.write_u64(t.to_bits());
                }
                None => h.write_u8(0),
            }
        }
        h.finish()
    }

    /// Folds a fresh planning outcome into the plan cache (when `fp` is
    /// set) and converts it to the shared-plan form the commit path
    /// consumes. `Ok` and `JobUnplaceable` outcomes are memoized —
    /// planning is deterministic either way — hard `Core` errors are
    /// not.
    fn memoize_plan(
        &mut self,
        d: usize,
        fp: Option<u64>,
        fresh: Result<GatedPlan, RuntimeError>,
    ) -> Result<PlannedParts, RuntimeError> {
        match fresh {
            Ok(gated) => {
                let plan = std::sync::Arc::new(gated.plan);
                if let Some(fp) = fp {
                    self.route_cache.plans.insert(
                        (d, fp),
                        PlanEntry {
                            trace: gated.trace,
                            outcome: Ok(std::sync::Arc::clone(&plan)),
                        },
                    );
                }
                Ok((plan, gated.members, gated.shrinks))
            }
            Err(RuntimeError::JobUnplaceable { job_id, source }) => {
                if let Some(fp) = fp {
                    self.route_cache.plans.insert(
                        (d, fp),
                        PlanEntry {
                            trace: Vec::new(),
                            outcome: Err(source.clone()),
                        },
                    );
                }
                Err(RuntimeError::JobUnplaceable { job_id, source })
            }
            Err(e) => Err(e),
        }
    }

    /// Phase one of best-k speculation: probe, pack and plan the top-k
    /// ranked candidates before the ranked walk consumes them.
    ///
    /// Cap probes and packs run **sequentially in ranked order** — they
    /// mutate the route cache, and a deterministic mutation order keeps
    /// the cache stream reproducible. Planning (the expensive part) then
    /// runs concurrently under `std::thread::scope`: it is a pure
    /// function of (device, circuits, strategy), so concurrency can
    /// change wall-clock only, never an outcome. Losing candidates'
    /// probes stay in the route cache and warm later dispatches.
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn speculate(
        &mut self,
        ranked: &[usize],
        pipeline: &Pipeline,
        head_seq: usize,
        head_arrival: f64,
        head_id: u64,
        head_circuit: &Circuit,
        head_strategy: &Strategy,
        strategy_fp: u64,
        head_threshold: Option<f64>,
        shape: u64,
        policy_fp: u64,
        batch_index: usize,
    ) -> Vec<Option<SpecOutcome>> {
        enum Prep {
            Ready {
                d: usize,
                pack: CandidatePack,
                members: PlanMembers,
                fp: Option<u64>,
            },
            Done(SpecOutcome),
        }
        let mut preps: Vec<Prep> = Vec::with_capacity(ranked.len());
        for &d in ranked {
            let cap_probe = match (self.efs_gate, head_threshold) {
                (EfsGate::HeadOnly, Some(threshold)) => self
                    .cached_head_cap(d, head_circuit, threshold, head_strategy, shape, policy_fp)
                    .map(|c| c.max(1)),
                _ => Ok(self.cfg.max_parallel),
            };
            let prep = match cap_probe {
                Ok(cap) => {
                    let qubits = self.registry.device_at(d).num_qubits();
                    match self
                        .pack_candidate(
                            d,
                            qubits,
                            cap,
                            head_seq,
                            head_arrival,
                            head_strategy,
                            false,
                        )
                        .and_then(|pack| {
                            let members = self.plan_members(&pack.picks_seqs)?;
                            Ok((pack, members))
                        }) {
                        Ok((pack, members)) => {
                            // The plan cache is consulted here, on the
                            // main thread in ranked order, so the
                            // hit/miss counters and lookup sequence are
                            // deterministic regardless of how the
                            // planning workers below interleave.
                            let fp = (self.plan_memo == PlanMemo::EpochKeyed)
                                .then(|| self.plan_fingerprint(d, strategy_fp, &members));
                            let cached =
                                fp.and_then(|fp| self.route_cache.plans.get(&(d, fp)).cloned());
                            match cached {
                                Some(entry) => {
                                    self.route_cache.plan_hits += 1;
                                    let replayed = replay_plan(
                                        entry,
                                        batch_index,
                                        self.registry.device_at(d).name(),
                                        members,
                                    );
                                    Prep::Done(SpecOutcome::Planned {
                                        pack,
                                        plan: Box::new(replayed),
                                    })
                                }
                                None => {
                                    if fp.is_some() {
                                        self.route_cache.plan_misses += 1;
                                    }
                                    Prep::Ready {
                                        d,
                                        pack,
                                        members,
                                        fp,
                                    }
                                }
                            }
                        }
                        Err(e) => Prep::Done(SpecOutcome::Failed(e)),
                    }
                }
                Err(
                    e @ (CoreError::PartitionUnavailable { .. } | CoreError::ProgramTooWide { .. }),
                ) => Prep::Done(SpecOutcome::Unplaceable(RuntimeError::JobUnplaceable {
                    job_id: head_id,
                    source: e,
                })),
                Err(e) => Prep::Done(SpecOutcome::Failed(RuntimeError::Core(e))),
            };
            preps.push(prep);
        }
        let gate = self.efs_gate;
        let optimize = self.cfg.optimize;
        let registry = &self.registry;
        struct FreshSlot {
            d: usize,
            fp: Option<u64>,
            pack: CandidatePack,
            gated: Result<GatedPlan, RuntimeError>,
        }
        enum RawSlot {
            Done(SpecOutcome),
            Fresh(Box<FreshSlot>),
        }
        let (raw, plan_ns) = std::thread::scope(|scope| {
            let slots: Vec<_> = preps
                .into_iter()
                .map(|prep| match prep {
                    Prep::Done(outcome) => Ok(RawSlot::Done(outcome)),
                    Prep::Ready {
                        d,
                        pack,
                        members,
                        fp,
                    } => {
                        let device = registry.device_at(d);
                        Err(Box::new((
                            d,
                            fp,
                            pack,
                            scope.spawn(move || {
                                let plan_started = std::time::Instant::now();
                                let gated = plan_gated_members(
                                    pipeline,
                                    device,
                                    batch_index,
                                    gate,
                                    optimize,
                                    head_strategy,
                                    members,
                                );
                                (gated, plan_started.elapsed().as_nanos() as u64)
                            }),
                        )))
                    }
                })
                .collect();
            let mut plan_ns = 0u64;
            let raw: Vec<RawSlot> = slots
                .into_iter()
                .map(|slot| match slot {
                    Ok(done) => done,
                    Err(pending) => {
                        let (d, fp, pack, handle) = *pending;
                        let (gated, elapsed) = handle
                            .join()
                            .unwrap_or_else(|p| std::panic::resume_unwind(p));
                        plan_ns = plan_ns.saturating_add(elapsed);
                        RawSlot::Fresh(Box::new(FreshSlot { d, fp, pack, gated }))
                    }
                })
                .collect();
            (raw, plan_ns)
        });
        self.plan_ns = self.plan_ns.saturating_add(plan_ns);
        // Memoization runs after the scope, again in ranked order: the
        // cache sees the same insertion sequence the sequential path
        // would produce for these candidates.
        raw.into_iter()
            .map(|slot| {
                Some(match slot {
                    RawSlot::Done(outcome) => outcome,
                    RawSlot::Fresh(fresh) => {
                        let FreshSlot { d, fp, pack, gated } = *fresh;
                        let plan = self.memoize_plan(d, fp, gated);
                        SpecOutcome::Planned {
                            pack,
                            plan: Box::new(plan),
                        }
                    }
                })
            })
            .collect()
    }

    /// One candidate device's admission pass: bind the arrived window
    /// at this candidate's start horizon, run the policy's pack, and
    /// copy out everything the commit path needs (so packs for several
    /// speculative candidates can coexist — each `prepare` rebinds the
    /// store's joinable flags).
    #[allow(clippy::too_many_arguments)]
    fn pack_candidate(
        &mut self,
        d: usize,
        qubits: usize,
        cap: usize,
        head_seq: usize,
        head_arrival: f64,
        head_strategy: &Strategy,
        probe_widest: bool,
    ) -> Result<CandidatePack, RuntimeError> {
        let start = self.states[d].clock.max(head_arrival);
        self.pending.prepare(start, Some(head_strategy));
        let arrived = self.pending.arrived(start);
        let head_pos = self
            .pending
            .position_of(head_arrival, head_seq)
            .ok_or(RuntimeError::QueueCorrupted { seq: head_seq })?;
        let budget = BatchBudget {
            qubits,
            max_members: cap,
        };
        let picks = if probe_widest {
            vec![head_pos]
        } else {
            self.policy.pack(arrived, head_pos, &budget)
        };
        debug_assert_eq!(picks.first(), Some(&head_pos), "head must lead the batch");
        let picks_seqs: Vec<usize> = picks.iter().map(|&i| arrived[i].seq).collect();
        let max_pick = picks.iter().copied().max().unwrap_or(head_pos);
        let pool = arrived[..=max_pick]
            .iter()
            .map(|v| (v.seq, v.width))
            .collect();
        Ok(CandidatePack {
            start,
            picks,
            picks_seqs,
            pool,
            head_pos,
        })
    }

    /// Pre-resolves the per-member planning inputs from the store, so
    /// planning itself ([`plan_gated_members`]) runs without touching
    /// the service — off the main thread when speculating.
    fn plan_members(&self, seqs: &[usize]) -> Result<PlanMembers, RuntimeError> {
        let mut ids = Vec::with_capacity(seqs.len());
        let mut circuits = Vec::with_capacity(seqs.len());
        let mut shapes = Vec::with_capacity(seqs.len());
        for &s in seqs {
            let p = self.pending_by_seq(s)?;
            ids.push(p.id);
            circuits.push(p.circuit.clone());
            shapes.push(p.shape);
        }
        let gated = matches!(self.efs_gate, EfsGate::Batch | EfsGate::BatchWorstExcess);
        let thresholds = if gated {
            let mut thresholds = Vec::with_capacity(seqs.len());
            for &s in seqs {
                thresholds.push(
                    self.pending_by_seq(s)?
                        .fidelity_threshold
                        .or(self.cfg.fidelity_threshold),
                );
            }
            thresholds
        } else {
            Vec::new()
        };
        Ok(PlanMembers {
            seqs: seqs.to_vec(),
            ids,
            circuits,
            shapes,
            thresholds,
        })
    }

    /// The head circuit's solo-best EFS partition score on a device,
    /// memoized across batches by (device, shape, partition policy);
    /// `None` records — and caches — "no placement on this chip".
    fn cached_solo_score(
        &mut self,
        device_index: usize,
        circuit: &Circuit,
        policy: &PartitionPolicy,
        shape: u64,
        policy_fp: u64,
    ) -> Option<f64> {
        let key = (device_index, shape, policy_fp);
        if let Some(&cached) = self.route_cache.solo.get(&key) {
            self.route_cache.hits += 1;
            return cached;
        }
        self.route_cache.misses += 1;
        let score = best_partition(self.registry.device_at(device_index), circuit, policy)
            .ok()
            .map(|alloc| alloc.efs.score);
        self.route_cache.solo.insert(key, score);
        score
    }

    /// The head-only EFS gate's admissible copy count on a device,
    /// memoized across batches by (device, shape, partition policy,
    /// threshold).
    fn cached_head_cap(
        &mut self,
        device_index: usize,
        circuit: &Circuit,
        threshold: f64,
        strategy: &Strategy,
        shape: u64,
        policy_fp: u64,
    ) -> Result<usize, CoreError> {
        let key = (device_index, shape, policy_fp, threshold.to_bits());
        if let Some(cached) = self.route_cache.head_cap.get(&key) {
            self.route_cache.hits += 1;
            return cached.clone();
        }
        self.route_cache.misses += 1;
        let result = parallel_count_for_threshold(
            self.registry.device_at(device_index),
            circuit,
            threshold,
            self.cfg.max_parallel,
            strategy,
        );
        self.route_cache.head_cap.insert(key, result.clone());
        result
    }

    /// The report of a drained service (all results present).
    fn drained_report(&self) -> ServiceReport {
        debug_assert!(self.pending.is_empty());
        let n = self.next_seq.max(1) as f64;
        let total_wait: f64 = self.states.iter().map(|s| s.total_wait).sum();
        let total_turnaround: f64 = self.states.iter().map(|s| s.total_turnaround).sum();
        let busy_qubit_time: f64 = self.states.iter().map(|s| s.busy_qubit_time).sum();
        let weighted_busy: f64 = self
            .states
            .iter()
            .enumerate()
            .map(|(i, s)| s.busy_time * self.registry.device_at(i).num_qubits() as f64)
            .sum();
        let makespan = self
            .states
            .iter()
            .map(|s| s.clock)
            .fold(0.0f64, |a, b| a.max(b));
        let stats = QueueStats {
            mean_waiting: total_wait / n,
            mean_turnaround: total_turnaround / n,
            makespan,
            mean_throughput: if weighted_busy > 0.0 {
                busy_qubit_time / weighted_busy
            } else {
                0.0
            },
            batches: self.batches.len(),
        };
        let per_device = self
            .states
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let device = self.registry.device_at(i);
                DeviceReport {
                    device: device.name().to_string(),
                    jobs: s.jobs,
                    stats: QueueStats {
                        mean_waiting: s.total_wait / (s.jobs.max(1) as f64),
                        mean_turnaround: s.total_turnaround / (s.jobs.max(1) as f64),
                        makespan: s.clock,
                        mean_throughput: if s.busy_time > 0.0 {
                            s.busy_qubit_time / (s.busy_time * device.num_qubits() as f64)
                        } else {
                            0.0
                        },
                        batches: s.batches,
                    },
                }
            })
            .collect();
        ServiceReport {
            stats,
            per_device,
            batches: self.batches.clone(),
            job_results: self
                .results
                .iter()
                .map(|r| r.clone().expect("drained service has every result"))
                .collect(),
            events: self.log.events().to_vec(),
            dropped_events: self.log.dropped(),
        }
    }

    /// Cumulative wall-clock nanoseconds this service spent *executing*
    /// batches (the trajectory simulation inside
    /// [`Service::tick`]/[`Service::run_until_drained`]), as opposed to
    /// dispatch-loop bookkeeping. The `fleet_shootout` bench subtracts
    /// this from end-to-end wall time to isolate scheduler overhead.
    pub fn execution_time_ns(&self) -> u64 {
        self.exec_ns
    }

    /// Cumulative wall-clock nanoseconds this service spent *planning*
    /// batches (mapping/partitioning of the gated batch members) —
    /// workload cost, like execution, not queue bookkeeping. Under
    /// best-k speculation the concurrent per-candidate durations are
    /// summed, so this can exceed the wall time the planning stage
    /// actually occupied. The `fleet_shootout` bench subtracts this
    /// (with [`Service::execution_time_ns`]) from end-to-end wall time
    /// to isolate the dispatch loop itself.
    pub fn planning_time_ns(&self) -> u64 {
        self.plan_ns
    }
}

/// Everything the commit path needs from one candidate's admission
/// pass, copied out of the pending store so several speculative packs
/// can coexist (each [`PendingStore::prepare`] rebinds the store's
/// joinable flags to one candidate's horizon).
struct CandidatePack {
    /// The batch's start on this candidate (device clock vs head
    /// arrival).
    start: f64,
    /// The policy's picks: positions into the candidate's arrived
    /// window, head first.
    picks: Vec<usize>,
    /// The picks' submission indices, parallel to `picks`.
    picks_seqs: Vec<usize>,
    /// `(seq, width)` of the arrived window up to the last pick — the
    /// overtake-accounting pool.
    pool: Vec<(usize, usize)>,
    /// The head's position in the arrived window.
    head_pos: usize,
}

/// Per-member planning inputs, pre-resolved from the pending store so
/// [`plan_gated_members`] can run without touching the service (off the
/// main thread when speculating). The planning loop mutates its copy in
/// place as members are evicted, so the returned `seqs`/`ids` are the
/// committed batch.
struct PlanMembers {
    seqs: Vec<usize>,
    ids: Vec<u64>,
    circuits: Vec<Circuit>,
    /// Per-member circuit-shape fingerprints (copied from the pending
    /// store) — the ordered structural identity that keys the plan
    /// cache.
    shapes: Vec<u64>,
    /// Effective per-member thresholds; resolved only in the batch-gate
    /// modes (empty otherwise, matching the sequential path's laziness).
    thresholds: Vec<Option<f64>>,
}

/// A committed candidate's plan in shared form: the (fresh or replayed)
/// workload plan behind an [`Arc`][std::sync::Arc] so cache entries and
/// staged batches share one allocation, the surviving members, and the
/// buffered shrink events.
type PlannedParts = (std::sync::Arc<PlannedWorkload>, PlanMembers, Vec<Event>);

/// One speculative candidate's precomputed dispatch outcome.
enum SpecOutcome {
    /// The head-cap probe rejected the candidate; the ranked walk falls
    /// past it exactly like the sequential path.
    Unplaceable(RuntimeError),
    /// A hard error — surfaced only if the ranked walk actually reaches
    /// this candidate, so speculation never changes which error a run
    /// reports.
    Failed(RuntimeError),
    /// The candidate packed; `plan` holds its (possibly failed) plan
    /// (boxed — a planned workload is large, the other variants are
    /// not). The walk commits the first ranked `Planned` whose plan
    /// succeeded.
    Planned {
        pack: CandidatePack,
        plan: Box<Result<PlannedParts, RuntimeError>>,
    },
}

/// A successful gated planning pass: the plan, the surviving members,
/// the buffered shrink events, and the eviction `trace` that reproduces
/// them — `(position, reason)` per eviction, in order. The trace is
/// what the plan cache memoizes: replaying it against a future batch
/// with the same shape fingerprints re-derives the shrink events (bound
/// to the *current* job ids) without re-running the partitioner.
struct GatedPlan {
    plan: PlannedWorkload,
    members: PlanMembers,
    shrinks: Vec<Event>,
    trace: Vec<(usize, ShrinkReason)>,
}

/// One staged batch: every scheduling decision made, every queue/clock
/// mutation applied, and the batch's full event block buffered — with
/// execution and the event/statistics fold still pending
/// ([`Service::finish_batch`]). Holds everything execution needs by
/// value (or behind [`Arc`][std::sync::Arc]), so
/// [`DispatchSharding::Grouped`] workers can run batches from `&self`
/// references across scoped threads.
struct StagedBatch {
    device_index: usize,
    /// The device's dispatch group — the unit of execution parallelism
    /// under [`DispatchSharding::Grouped`].
    group: usize,
    batch_index: usize,
    device: Device,
    pipeline: Pipeline,
    plan: std::sync::Arc<PlannedWorkload>,
    start: f64,
    completion: f64,
    makespan: f64,
    batch_seed: u64,
    member_seqs: Vec<usize>,
    job_ids: Vec<u64>,
    /// Current member circuit names, captured at stage time: a replayed
    /// plan carries the names of the batch it was first planned for, so
    /// the finish pass re-binds each result's name from here.
    names: Vec<String>,
    widths: Vec<usize>,
    shots: Vec<usize>,
    parallelism: Vec<ShotParallelism>,
    kernels: Vec<TrajectoryKernel>,
    waits: Vec<f64>,
    turnarounds: Vec<f64>,
    events: Vec<Event>,
}

/// Replays a memoized plan entry against the current batch members:
/// a memoized unplaceable outcome re-binds to the current head's job
/// id, and a memoized plan re-applies the recorded eviction trace so
/// the shrink events carry the *current* dropped job ids. The cached
/// [`PlannedWorkload`] itself is shared untouched — replay is an `Arc`
/// clone plus O(trace) bookkeeping, never a partitioner call.
fn replay_plan(
    entry: PlanEntry,
    batch_index: usize,
    device_name: &str,
    mut members: PlanMembers,
) -> Result<PlannedParts, RuntimeError> {
    match entry.outcome {
        Err(source) => Err(RuntimeError::JobUnplaceable {
            // The head is never evicted, so a whole-batch planning
            // failure is always attributed to it.
            job_id: members.ids[0],
            source,
        }),
        Ok(plan) => {
            let mut shrinks = Vec::with_capacity(entry.trace.len());
            for (evict, reason) in entry.trace {
                members.seqs.remove(evict);
                let dropped_id = members.ids.remove(evict);
                members.circuits.remove(evict);
                members.shapes.remove(evict);
                if !members.thresholds.is_empty() {
                    members.thresholds.remove(evict);
                }
                shrinks.push(Event::BatchShrunk {
                    batch_index,
                    device: device_name.to_string(),
                    dropped_job_id: dropped_id,
                    remaining: members.seqs.len(),
                    reason,
                });
            }
            debug_assert!(
                plan.replayable_for(&members.circuits.iter().collect::<Vec<_>>()),
                "plan-cache fingerprint collision: cached plan does not match members"
            );
            Ok((plan, members, shrinks))
        }
    }
}

/// Plans `members` on `device`, shrinking while the partitioner cannot
/// place the batch (tail eviction) and — in [`EfsGate::Batch`] /
/// [`EfsGate::BatchWorstExcess`] mode — while any member's EFS excess
/// exceeds its own effective threshold (tail or worst-excess eviction
/// respectively). Returns the plan, the surviving members, and the
/// buffered shrink events (recorded by the caller only if the batch
/// actually commits on `device` — a failed candidate must leave no
/// trace, or log replays would see phantom shrinks for a batch that was
/// eventually planned elsewhere).
///
/// `head_strategy` is the effective strategy of `members.seqs[0]` (the
/// head, which no eviction rule can remove): it parameterizes the
/// solo-EFS baselines exactly as the sequential path always has.
///
/// A free function on purpose: its only inputs are the pre-resolved
/// members and shared device/pipeline state, so best-k speculation can
/// run one invocation per candidate on scoped threads.
///
/// The shrink loop re-plans from cached per-member state: the circuits
/// are cloned and peephole-optimized **once**, the per-member
/// thresholds are resolved once, and the solo-best EFS baselines are
/// probed once on the first successful plan; each shrink step merely
/// removes the evicted member's entry from every cache.
fn plan_gated_members(
    pipeline: &Pipeline,
    device: &Device,
    batch_index: usize,
    gate: EfsGate,
    optimize: bool,
    head_strategy: &Strategy,
    mut members: PlanMembers,
) -> Result<GatedPlan, RuntimeError> {
    // Solo fast path: a one-job batch can never gate (the head anchors
    // the batch) and never shrink (a placement failure is terminal), so
    // it skips the gate machinery entirely. `plan(optimize)` clones and
    // optimizes internally, which is equivalent to the general path's
    // pre-optimize-then-`plan(false)` sequence.
    if members.seqs.len() == 1 {
        return match pipeline.plan(device, &members.circuits, optimize) {
            Ok(plan) => Ok(GatedPlan {
                plan,
                members,
                shrinks: Vec::new(),
                trace: Vec::new(),
            }),
            Err(
                e @ (CoreError::PartitionUnavailable { .. } | CoreError::ProgramTooWide { .. }),
            ) => Err(RuntimeError::JobUnplaceable {
                job_id: members.ids[0],
                source: e,
            }),
            Err(e) => Err(RuntimeError::Core(e)),
        };
    }
    let device_name = device.name().to_string();
    if optimize {
        // Pre-optimized here exactly once; the pipeline is then asked
        // not to optimize again, which is equivalent to the
        // per-iteration pass it used to run on fresh clones.
        for c in &mut members.circuits {
            c.cancel_adjacent_inverses();
        }
    }
    let gated = matches!(gate, EfsGate::Batch | EfsGate::BatchWorstExcess);
    let mut shrinks: Vec<Event> = Vec::new();
    let mut trace: Vec<(usize, ShrinkReason)> = Vec::new();
    let mut solo_cache: Option<Vec<f64>> = None;
    loop {
        match pipeline.plan(device, &members.circuits, false) {
            Ok(plan) => {
                if gated && members.seqs.len() > 1 && members.thresholds.iter().any(Option::is_some)
                {
                    // The plan already allocated the joint partitions;
                    // only the solo baselines need probing
                    // (deduplicated, cached across shrink iterations —
                    // evictions remove the matching cache entry, so
                    // indices stay aligned).
                    if solo_cache.is_none() {
                        let refs: Vec<&Circuit> = plan.programs.iter().collect();
                        solo_cache = Some(
                            solo_efs_scores(device, &refs, head_strategy)
                                .map_err(RuntimeError::Core)?,
                        );
                    }
                    let solo = solo_cache.as_ref().expect("just filled");
                    let mut excesses = vec![0.0; members.seqs.len()];
                    for alloc in &plan.allocations {
                        excesses[alloc.program_index] =
                            (alloc.efs.score - solo[alloc.program_index]).max(0.0);
                    }
                    let violated = members
                        .thresholds
                        .iter()
                        .zip(&excesses)
                        .any(|(t, &e)| t.is_some_and(|t| e > t));
                    if violated {
                        let evict = match gate {
                            EfsGate::BatchWorstExcess => worst_excess_position(&excesses),
                            _ => members.seqs.len() - 1,
                        };
                        members.seqs.remove(evict);
                        let dropped_id = members.ids.remove(evict);
                        members.circuits.remove(evict);
                        members.shapes.remove(evict);
                        members.thresholds.remove(evict);
                        if let Some(cache) = solo_cache.as_mut() {
                            cache.remove(evict);
                        }
                        trace.push((evict, ShrinkReason::FidelityGate));
                        shrinks.push(Event::BatchShrunk {
                            batch_index,
                            device: device_name.clone(),
                            dropped_job_id: dropped_id,
                            remaining: members.seqs.len(),
                            reason: ShrinkReason::FidelityGate,
                        });
                        continue;
                    }
                }
                return Ok(GatedPlan {
                    plan,
                    members,
                    shrinks,
                    trace,
                });
            }
            Err(
                e @ (CoreError::PartitionUnavailable { .. } | CoreError::ProgramTooWide { .. }),
            ) => {
                if members.seqs.len() == 1 {
                    return Err(RuntimeError::JobUnplaceable {
                        job_id: members.ids[0],
                        source: e,
                    });
                }
                trace.push((members.seqs.len() - 1, ShrinkReason::PartitionFailure));
                members.seqs.pop().expect("len > 1");
                let dropped_id = members.ids.pop().expect("len > 1");
                members.circuits.pop();
                members.shapes.pop();
                if gated {
                    members.thresholds.pop();
                }
                if let Some(cache) = solo_cache.as_mut() {
                    cache.pop();
                }
                shrinks.push(Event::BatchShrunk {
                    batch_index,
                    device: device_name.clone(),
                    dropped_job_id: dropped_id,
                    remaining: members.seqs.len(),
                    reason: ShrinkReason::PartitionFailure,
                });
            }
            Err(e) => return Err(RuntimeError::Core(e)),
        }
    }
}

/// Per-batch seed derivation: a distinct odd stride keeps batch streams
/// disjoint from the per-program golden-ratio stride used inside the
/// backend.
pub(crate) fn derive_batch_seed(base: u64, batch_index: usize) -> u64 {
    base.wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(batch_index as u64 + 1))
}

/// The position the worst-excess gate evicts: the member with the
/// largest EFS excess among the non-head members (the head anchors the
/// batch), ties resolved toward the tail.
fn worst_excess_position(excesses: &[f64]) -> usize {
    let mut pos = excesses.len() - 1;
    let mut best = f64::NEG_INFINITY;
    for (i, &e) in excesses.iter().enumerate().skip(1) {
        if e >= best {
            best = e;
            pos = i;
        }
    }
    pos
}

/// Executes every program of a planned batch, one scoped thread per
/// program (or serially under [`ExecutionMode::Serial`]), program `i`'s
/// shot budget spread per `parallelism[i]` (the job's effective mode:
/// its per-request override or the service default). Results come back
/// in program order regardless of thread scheduling.
#[allow(clippy::too_many_arguments)]
fn execute_members(
    pipeline: &Pipeline,
    device: &Device,
    plan: &PlannedWorkload,
    shots: &[usize],
    batch_seed: u64,
    mode: ExecutionMode,
    parallelism: &[ShotParallelism],
    kernels: &[TrajectoryKernel],
) -> Result<Vec<ProgramResult>, RuntimeError> {
    let exec_for = |pos: usize| ExecutionConfig {
        shots: shots[pos],
        seed: batch_seed,
        parallelism: parallelism[pos],
        kernel: kernels[pos],
        ..ParallelConfig::default().execution
    };
    match mode {
        ExecutionMode::Serial => (0..shots.len())
            .map(|pos| {
                pipeline
                    .backend
                    .run_program(device, plan, pos, &exec_for(pos))
                    .map_err(RuntimeError::Core)
            })
            .collect(),
        ExecutionMode::Concurrent => {
            let backend = &pipeline.backend;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shots.len())
                    .map(|pos| {
                        let exec = exec_for(pos);
                        scope.spawn(move || backend.run_program(device, plan, pos, &exec))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|p| std::panic::resume_unwind(p))
                            .map_err(RuntimeError::Core)
                    })
                    .collect()
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::synthetic_jobs;
    use crate::policy::{Backfill, ShortestJobFirst};
    use qucp_device::ibm;

    fn fifo_service(max_parallel: usize) -> Service {
        Service::builder()
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .max_parallel(max_parallel)
            .seed(42)
            .build()
            .unwrap()
    }

    fn submit_all(service: &mut Service, n: usize) -> Vec<JobTicket> {
        synthetic_jobs(n, 200.0, 128, 7)
            .iter()
            .map(|j| service.submit(JobRequest::from_job(j)).unwrap())
            .collect()
    }

    #[test]
    fn drained_service_serves_every_job() {
        let mut service = fifo_service(3);
        let tickets = submit_all(&mut service, 8);
        let report = service.run_until_drained().unwrap();
        assert_eq!(report.job_results.len(), 8);
        for (ticket, r) in tickets.iter().zip(&report.job_results) {
            assert_eq!(r.job_id, ticket.id);
            assert_eq!(service.result(*ticket).unwrap(), r);
        }
        assert_eq!(service.event_log().completed_ids().len(), 8);
        assert_eq!(report.per_device.len(), 1);
        assert_eq!(report.per_device[0].jobs, 8);
    }

    #[test]
    fn tick_reports_completions_incrementally() {
        let mut service = fifo_service(2);
        let tickets = submit_all(&mut service, 4);
        // Nothing can have completed before the first arrival.
        assert!(service.tick(0.0).unwrap().len() <= tickets.len());
        let mut seen: Vec<JobTicket> = Vec::new();
        let mut t = 0.0;
        while seen.len() < 4 {
            t += 50_000.0;
            seen.extend(service.tick(t).unwrap());
            assert!(t < 1e12, "tick never drained");
        }
        assert_eq!(seen.len(), 4);
        // Every ticket reported exactly once.
        let mut ids: Vec<usize> = seen.iter().map(|t| t.seq).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // Draining afterwards reports nothing new.
        assert!(service.tick(f64::INFINITY).unwrap().is_empty());
    }

    #[test]
    fn incremental_ticks_match_one_shot_drain() {
        let jobs = synthetic_jobs(6, 300.0, 128, 11);
        let run = |ticked: bool| {
            let mut service = fifo_service(3);
            for j in &jobs {
                service.submit(JobRequest::from_job(j)).unwrap();
            }
            if ticked {
                let mut t = 0.0;
                for _ in 0..200 {
                    t += 10_000.0;
                    service.tick(t).unwrap();
                }
            }
            service.run_until_drained().unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn builder_validation_rejects_bad_configs() {
        assert!(matches!(
            Service::builder().build().unwrap_err(),
            RuntimeError::NoDevices
        ));
        assert!(matches!(
            Service::builder()
                .device(ibm::toronto())
                .max_parallel(0)
                .build()
                .unwrap_err(),
            RuntimeError::ZeroParallel
        ));
        assert!(matches!(
            Service::builder()
                .device(ibm::toronto())
                .default_shots(0)
                .build()
                .unwrap_err(),
            RuntimeError::ZeroShots
        ));
        assert!(matches!(
            Service::builder()
                .device(ibm::toronto())
                .fidelity_threshold(Some(f64::NAN))
                .build()
                .unwrap_err(),
            RuntimeError::InvalidThreshold { .. }
        ));
        assert!(matches!(
            Service::builder()
                .device(ibm::toronto())
                .fidelity_threshold(Some(-0.5))
                .build()
                .unwrap_err(),
            RuntimeError::InvalidThreshold { .. }
        ));
    }

    #[test]
    fn submit_validation_rejects_bad_requests() {
        let mut service = fifo_service(2);
        let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
        assert!(matches!(
            service
                .submit(JobRequest::new(bell.clone(), f64::NAN))
                .unwrap_err(),
            RuntimeError::NonFiniteTime { .. }
        ));
        assert!(matches!(
            service
                .submit(JobRequest::new(bell.clone(), f64::INFINITY))
                .unwrap_err(),
            RuntimeError::NonFiniteTime { .. }
        ));
        assert!(matches!(
            service
                .submit(JobRequest::new(bell.clone(), 0.0).with_shots(0))
                .unwrap_err(),
            RuntimeError::ZeroShots
        ));
        assert!(matches!(
            service
                .submit(JobRequest::new(bell.clone(), 0.0).with_fidelity_threshold(-1.0))
                .unwrap_err(),
            RuntimeError::InvalidThreshold { .. }
        ));
        assert!(matches!(
            service
                .submit(JobRequest::new(qucp_circuit::Circuit::new(0), 0.0))
                .unwrap_err(),
            RuntimeError::EmptyCircuit
        ));
        // A rejected submission leaves no trace.
        assert_eq!(service.pending_len(), 0);
        assert!(service.event_log().is_empty());
    }

    #[test]
    fn per_job_shots_override_applies() {
        let mut service = fifo_service(2);
        let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
        service
            .submit(JobRequest::new(bell.clone(), 0.0).with_shots(64))
            .unwrap();
        service.submit(JobRequest::new(bell, 0.0)).unwrap();
        let report = service.run_until_drained().unwrap();
        assert_eq!(report.job_results[0].result.counts.shots(), 64);
        assert_eq!(report.job_results[1].result.counts.shots(), 1024);
    }

    #[test]
    fn per_job_strategy_split_batches() {
        let mut service = fifo_service(4);
        let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
        // Four simultaneous arrivals, the second under a different
        // strategy: it cannot share the head's batch.
        for i in 0..4 {
            let mut req = JobRequest::new(bell.clone(), 0.0).with_id(i);
            if i == 1 {
                req = req.with_strategy(strategy::multiqc());
            }
            service.submit(req).unwrap();
        }
        let report = service.run_until_drained().unwrap();
        assert_eq!(report.job_results.len(), 4);
        for batch in &report.batches {
            assert!(
                batch.job_ids == vec![1] || !batch.job_ids.contains(&1),
                "strategy-override job shared batch {:?}",
                batch.job_ids
            );
        }
        assert!(report.stats.batches >= 2);
    }

    #[test]
    fn backfill_and_sjf_conserve_jobs() {
        for policy in ["backfill", "sjf"] {
            let mut builder = Service::builder()
                .device(ibm::toronto())
                .max_parallel(3)
                .seed(9);
            builder = match policy {
                "backfill" => builder.policy(Backfill::default()),
                _ => builder.policy(ShortestJobFirst),
            };
            let mut service = builder.build().unwrap();
            let tickets = submit_all(&mut service, 9);
            let report = service.run_until_drained().unwrap();
            assert_eq!(report.job_results.len(), 9, "{policy}");
            let mut served: Vec<u64> = report
                .batches
                .iter()
                .flat_map(|b| b.job_ids.iter().copied())
                .collect();
            served.sort_unstable();
            let mut expected: Vec<u64> = tickets.iter().map(|t| t.id).collect();
            expected.sort_unstable();
            assert_eq!(served, expected, "{policy}");
        }
    }

    #[test]
    fn tick_neg_infinity_is_a_noop_and_only_nan_is_rejected() {
        // The time contract is asymmetric: submit requires finite
        // arrivals (pinned elsewhere), tick only rejects NaN. −∞ is a
        // valid horizon by which nothing can start or complete.
        let mut service = fifo_service(2);
        submit_all(&mut service, 3);
        let done = service.tick(f64::NEG_INFINITY).unwrap();
        assert!(done.is_empty());
        assert_eq!(service.pending_len(), 3, "−∞ must not dispatch anything");
        assert!(service.event_log().planned_batches().is_empty());
        assert!(matches!(
            service.tick(f64::NAN).unwrap_err(),
            RuntimeError::NonFiniteTime { .. }
        ));
        // +∞ drains; the earlier −∞ tick must not have disturbed state.
        let done = service.tick(f64::INFINITY).unwrap();
        assert_eq!(done.len(), 3);
        assert!(service.tick(f64::NEG_INFINITY).unwrap().is_empty());
    }

    #[test]
    fn earliest_free_routing_skips_partition_probes() {
        // The default policy never asks for partition scores, so the
        // routing path must not populate the solo cache — keeping the
        // default dispatch exactly as cheap as before the seam.
        let mut service = fifo_service(2);
        submit_all(&mut service, 4);
        service.run_until_drained().unwrap();
        let stats = service.route_cache_stats();
        assert_eq!(stats.hits + stats.misses, 0);
        assert_eq!(stats.entries, 0);
        assert_eq!(service.routing_name(), "EarliestFree");
        // Every committed batch still records its routing decision.
        assert_eq!(
            service.event_log().routed().len(),
            service.event_log().planned_batches().len()
        );
    }

    #[test]
    fn head_only_gate_probes_are_cached_across_batches() {
        // Four identical-shape jobs under a head-only threshold force
        // one probe per (device, shape, threshold) — every subsequent
        // batch hits the memo, and the schedule is unchanged by it.
        let run = |jobs: usize| {
            let mut service = Service::builder()
                .device(ibm::toronto())
                .strategy(strategy::qucp(4.0))
                .max_parallel(2)
                .fidelity_threshold(Some(0.05))
                .default_shots(32)
                .seed(3)
                .build()
                .unwrap();
            let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
            for i in 0..jobs {
                let mut c = bell.clone();
                c.set_name(format!("bell#{i}"));
                service
                    .submit(JobRequest::new(c, 0.0).with_id(i as u64))
                    .unwrap();
            }
            let report = service.run_until_drained().unwrap();
            (report, service.route_cache_stats())
        };
        let (report, stats) = run(6);
        assert_eq!(report.job_results.len(), 6);
        assert!(report.stats.batches >= 2, "several batches must dispatch");
        assert_eq!(stats.misses, 1, "one probe per (device, shape, threshold)");
        assert_eq!(stats.hits, report.stats.batches - 1);
        // The memoized run must schedule exactly like a shorter burst
        // scaled up: batch memberships are a pure function of the jobs.
        let (short, _) = run(2);
        assert_eq!(
            report.batches[0].job_ids, short.batches[0].job_ids,
            "cache must not change scheduling decisions"
        );
    }

    #[test]
    fn calibration_aware_caches_solo_scores_per_device_and_shape() {
        let mut service = Service::builder()
            .device(ibm::melbourne())
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .routing(crate::registry::CalibrationAware::default())
            .max_parallel(2)
            .default_shots(16)
            .seed(8)
            .build()
            .unwrap();
        assert_eq!(service.routing_name(), "CalibrationAware");
        let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
        for i in 0..6u64 {
            let mut c = bell.clone();
            c.set_name(format!("bell#{i}"));
            service.submit(JobRequest::new(c, 0.0).with_id(i)).unwrap();
        }
        let report = service.run_until_drained().unwrap();
        assert_eq!(report.job_results.len(), 6);
        let stats = service.route_cache_stats();
        // One solo probe per (device, shape): two devices, one shape.
        assert_eq!(stats.misses, 2);
        assert!(stats.hits > 0, "repeat dispatches must hit the memo");
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn shape_fingerprint_ignores_names_but_not_gates() {
        let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
        let mut renamed = bell.clone();
        renamed.set_name("other");
        assert_eq!(
            circuit_shape_fingerprint(&bell),
            circuit_shape_fingerprint(&renamed)
        );
        let mut grown = bell.clone();
        grown.h(0);
        assert_ne!(
            circuit_shape_fingerprint(&bell),
            circuit_shape_fingerprint(&grown)
        );
        // Distinct partition policies never share cache entries.
        let a = partition_policy_fingerprint(&strategy::qucp(4.0).partition);
        let b = partition_policy_fingerprint(&strategy::qucp(8.0).partition);
        let c = partition_policy_fingerprint(&strategy::multiqc().partition);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn worst_excess_position_skips_head_and_ties_to_tail() {
        // The head's excess never makes it evictable.
        assert_eq!(worst_excess_position(&[9.0, 1.0, 5.0]), 2);
        assert_eq!(worst_excess_position(&[0.0, 5.0, 1.0]), 1);
        // Ties resolve toward the tail (tail-shrink parity on uniform
        // excesses).
        assert_eq!(worst_excess_position(&[0.0, 2.0, 2.0]), 2);
        assert_eq!(worst_excess_position(&[3.0, 0.0]), 1);
    }

    #[test]
    fn advance_drift_without_model_is_a_noop_and_rejects_nonfinite() {
        let mut service = fifo_service(2);
        submit_all(&mut service, 2);
        assert_eq!(service.advance_drift(1e9).unwrap(), 0);
        assert_eq!(service.device_epoch(DeviceId::from_index(0)), 0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                service.advance_drift(bad).unwrap_err(),
                RuntimeError::NonFiniteTime { .. }
            ));
        }
        assert!(service.event_log().recalibrations().is_empty());
    }

    fn aware_two_chip_service(invalidation: CacheInvalidation) -> Service {
        Service::builder()
            .device(ibm::melbourne())
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .routing(crate::registry::CalibrationAware::default())
            .cache_invalidation(invalidation)
            .max_parallel(2)
            .default_shots(16)
            .seed(8)
            .build()
            .unwrap()
    }

    #[test]
    fn recalibration_bumps_epoch_invalidates_cache_and_emits_event() {
        let mut service = aware_two_chip_service(CacheInvalidation::EpochAware);
        submit_all(&mut service, 4);
        service.run_until_drained().unwrap();
        let warm = service.route_cache_stats();
        // Every shape was probed on both chips: half the entries belong
        // to each device.
        assert!(
            warm.entries >= 2 && warm.entries.is_multiple_of(2),
            "{warm:?}"
        );
        assert_eq!(warm.invalidated, 0);

        let mel = DeviceId::from_index(0);
        let fresh = ibm::melbourne().calibration().clone();
        let epoch = service.recalibrate(mel, fresh).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(service.device_epoch(mel), 1);
        assert_eq!(service.device_epoch(DeviceId::from_index(1)), 0);
        let stats = service.route_cache_stats();
        // Only Melbourne's entries dropped; Toronto's survive.
        assert_eq!(stats.entries, warm.entries / 2);
        assert_eq!(stats.invalidated, warm.entries / 2);
        assert_eq!(
            service.event_log().recalibrations(),
            vec![(ibm::melbourne().name(), 1)]
        );
        // The next same-shape dispatch re-probes the recalibrated chip.
        submit_all(&mut service, 2);
        service.run_until_drained().unwrap();
        assert!(service.route_cache_stats().entries > stats.entries);
        assert!(service.route_cache_stats().misses > warm.misses);
    }

    #[test]
    fn stale_cache_mode_survives_recalibration() {
        let mut service = aware_two_chip_service(CacheInvalidation::Never);
        submit_all(&mut service, 4);
        service.run_until_drained().unwrap();
        let warm = service.route_cache_stats();
        let mel = DeviceId::from_index(0);
        let fresh = ibm::melbourne().calibration().clone();
        service.recalibrate(mel, fresh).unwrap();
        // Epoch and telemetry still move — only the cache stays stale.
        assert_eq!(service.device_epoch(mel), 1);
        let stats = service.route_cache_stats();
        assert_eq!(stats.entries, warm.entries);
        assert_eq!(stats.invalidated, 0);
    }

    #[test]
    fn invalid_recalibrations_are_rejected_typed_without_side_effects() {
        let mut service = aware_two_chip_service(CacheInvalidation::EpochAware);
        submit_all(&mut service, 4);
        service.run_until_drained().unwrap();
        let warm = service.route_cache_stats();
        let mel = DeviceId::from_index(0);

        // NaN entries must not reach the device or the cache.
        let mut poisoned = ibm::melbourne().calibration().clone();
        poisoned.set_readout_error(3, f64::NAN);
        let err = service.recalibrate(mel, poisoned).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::InvalidCalibration {
                fault: crate::scheduler::CalibrationFault::NonFinite,
                ..
            }
        ));

        // Wrong qubit count.
        let wrong = ibm::toronto().calibration().clone();
        assert!(matches!(
            service.recalibrate(mel, wrong).unwrap_err(),
            RuntimeError::InvalidCalibration {
                fault: crate::scheduler::CalibrationFault::QubitCountMismatch { .. },
                ..
            }
        ));

        // Right qubit count, wrong link set.
        let line = qucp_device::Topology::line(ibm::melbourne().num_qubits());
        let uncovering = Calibration::uniform(&line, 0.02, 3e-4, 0.03);
        assert!(matches!(
            service.recalibrate(mel, uncovering).unwrap_err(),
            RuntimeError::InvalidCalibration {
                fault: crate::scheduler::CalibrationFault::MissingLinks,
                ..
            }
        ));

        // No side effects: epoch, cache and telemetry untouched.
        assert_eq!(service.device_epoch(mel), 0);
        assert_eq!(service.route_cache_stats(), warm);
        assert!(service.event_log().recalibrations().is_empty());
    }

    #[test]
    fn drift_steps_bump_epochs_and_recalibration_resets_restore_baseline() {
        let baseline = ibm::toronto().calibration().clone();
        let mut service = Service::builder()
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .drift(qucp_device::GaussianWalk::new(3, 1000.0).with_recalibration_every(4))
            .max_parallel(2)
            .seed(42)
            .build()
            .unwrap();
        let tor = DeviceId::from_index(0);
        // Three drift steps: three bumps, calibration has moved.
        assert_eq!(service.advance_drift(3000.0).unwrap(), 3);
        assert_eq!(service.device_epoch(tor), 3);
        assert_ne!(service.registry().get(tor).calibration(), &baseline);
        // Step 4 is the recalibration reset: back to baseline.
        assert_eq!(service.advance_drift(4000.0).unwrap(), 1);
        assert_eq!(service.device_epoch(tor), 4);
        assert_eq!(service.registry().get(tor).calibration(), &baseline);
        // Time never runs backwards; replaying an old horizon is a noop.
        assert_eq!(service.advance_drift(2000.0).unwrap(), 0);
        assert_eq!(service.device_epoch(tor), 4);
        // Telemetry recorded one event per bump, epochs ascending.
        assert_eq!(
            service
                .event_log()
                .recalibrations()
                .iter()
                .map(|&(_, e)| e)
                .collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn poisoning_drift_steps_are_rolled_back_with_a_typed_error() {
        // A misbehaving model (no clamps) writing NaN must hit the same
        // gate as an explicit NaN recalibration: typed error, step
        // rolled back, nothing bumped or emitted.
        #[derive(Debug)]
        struct PoisonDrift;
        impl DriftModel for PoisonDrift {
            fn steps_at(&self, now: f64) -> u64 {
                qucp_device::interval_steps(now, 1000.0)
            }
            fn apply_step(
                &self,
                _step: u64,
                _salt: u64,
                calibration: &mut Calibration,
                _crosstalk: &mut CrosstalkModel,
            ) -> bool {
                calibration.set_readout_error(0, f64::NAN);
                true
            }
        }
        let mut service = Service::builder()
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .drift(PoisonDrift)
            .max_parallel(2)
            .seed(42)
            .build()
            .unwrap();
        let baseline = ibm::toronto().calibration().clone();
        let err = service.advance_drift(3000.0).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::InvalidCalibration {
                fault: CalibrationFault::NonFinite,
                ..
            }
        ));
        let tor = DeviceId::from_index(0);
        assert_eq!(service.device_epoch(tor), 0, "poisoned step must not bump");
        assert_eq!(service.registry().get(tor).calibration(), &baseline);
        assert!(service.event_log().recalibrations().is_empty());
    }

    #[test]
    fn runaway_drift_horizons_are_refused_not_truncated() {
        // A clock-unit mismatch (e.g. seconds against a nanosecond
        // interval) must fail loudly with state untouched, never spin
        // through quadrillions of steps or silently skip some.
        let mut service = Service::builder()
            .device(ibm::toronto())
            .strategy(strategy::qucp(4.0))
            .drift(qucp_device::GaussianWalk::new(3, 1.0))
            .max_parallel(2)
            .seed(42)
            .build()
            .unwrap();
        let horizon = (MAX_DRIFT_STEPS_PER_ADVANCE + 1) as f64;
        let err = service.advance_drift(horizon).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::DriftHorizonTooFar {
                steps,
                max: MAX_DRIFT_STEPS_PER_ADVANCE,
            } if steps == MAX_DRIFT_STEPS_PER_ADVANCE + 1
        ));
        assert_eq!(service.device_epoch(DeviceId::from_index(0)), 0);
        assert!(service.event_log().recalibrations().is_empty());
        // The refusal is recoverable (the model is restored) and the
        // bound is per advance: bounded hops still make progress.
        assert!(service.advance_drift(10.0).unwrap() > 0);
        assert!(service.advance_drift(60.0).unwrap() > 0);
    }

    #[test]
    fn per_job_shot_parallelism_override_applies() {
        // Two identical jobs in one service, one overriding to sharded:
        // the override job's counts must match a service whose *default*
        // is sharded, the other job must match the serial default.
        let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
        let run = |default: ShotParallelism, with_override: bool| {
            let mut service = Service::builder()
                .device(ibm::toronto())
                .strategy(strategy::qucp(4.0))
                .shot_parallelism(default)
                .max_parallel(1)
                .default_shots(256)
                .seed(7)
                .build()
                .unwrap();
            for i in 0..2u64 {
                let mut req = JobRequest::new(bell.clone(), 0.0).with_id(i);
                if with_override && i == 0 {
                    req = req.with_shot_parallelism(ShotParallelism::sharded(4));
                }
                service.submit(req).unwrap();
            }
            service.run_until_drained().unwrap()
        };
        let mixed = run(ShotParallelism::Serial, true);
        let all_serial = run(ShotParallelism::Serial, false);
        let all_sharded = run(ShotParallelism::sharded(4), false);
        assert_eq!(
            mixed.job_results[0].result.counts, all_sharded.job_results[0].result.counts,
            "override job runs sharded"
        );
        assert_eq!(
            mixed.job_results[1].result.counts, all_serial.job_results[1].result.counts,
            "non-override job keeps the service default"
        );
        assert_ne!(
            mixed.job_results[0].result.counts, all_serial.job_results[0].result.counts,
            "the override must actually change the sample"
        );
    }

    #[test]
    fn per_job_trajectory_kernel_override_applies() {
        // Two identical jobs in one service, one overriding to the
        // survival-skip kernel: the override job's counts must match a
        // service whose *default* is survival-skip, the other job must
        // match the replay default.
        let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
        let run = |default: TrajectoryKernel, with_override: bool| {
            let mut service = Service::builder()
                .device(ibm::toronto())
                .strategy(strategy::qucp(4.0))
                .trajectory_kernel(default)
                .max_parallel(1)
                .default_shots(256)
                .seed(7)
                .build()
                .unwrap();
            for i in 0..2u64 {
                let mut req = JobRequest::new(bell.clone(), 0.0).with_id(i);
                if with_override && i == 0 {
                    req = req.with_trajectory_kernel(TrajectoryKernel::SurvivalSkip);
                }
                service.submit(req).unwrap();
            }
            service.run_until_drained().unwrap()
        };
        let mixed = run(TrajectoryKernel::Replay, true);
        let all_replay = run(TrajectoryKernel::Replay, false);
        let all_survival = run(TrajectoryKernel::SurvivalSkip, false);
        assert_eq!(
            mixed.job_results[0].result.counts, all_survival.job_results[0].result.counts,
            "override job runs the survival-skip kernel"
        );
        assert_eq!(
            mixed.job_results[1].result.counts, all_replay.job_results[1].result.counts,
            "non-override job keeps the service default"
        );
        assert_ne!(
            mixed.job_results[0].result.counts, all_replay.job_results[0].result.counts,
            "the override must actually change the sample"
        );
    }

    #[test]
    fn observer_sees_every_logged_event() {
        use std::sync::{Arc, Mutex};
        let seen = Arc::new(Mutex::new(0usize));
        let seen_in = Arc::clone(&seen);
        let mut service = Service::builder()
            .device(ibm::toronto())
            .max_parallel(2)
            .observer(move |_: &Event| *seen_in.lock().unwrap() += 1)
            .build()
            .unwrap();
        submit_all(&mut service, 4);
        service.run_until_drained().unwrap();
        assert_eq!(*seen.lock().unwrap(), service.events().len());
        assert!(service.events().len() >= 4 + 4); // submissions + completions
    }

    #[test]
    fn plan_cache_replays_repeated_batches_and_counts_lookups() {
        let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
        let mut service = fifo_service(2);
        // Four identical jobs, packed two per batch: the second batch's
        // member shapes fingerprint-match the first, so its committed
        // plan replays from the cache.
        for i in 0..4u64 {
            service
                .submit(JobRequest::new(bell.clone(), i as f64 * 100.0).with_id(i))
                .unwrap();
        }
        let report = service.run_until_drained().unwrap();
        let stats = service.route_cache_stats();
        assert!(stats.plan_misses >= 1, "the first batch must plan fresh");
        assert!(
            stats.plan_hits >= 1,
            "identical batches must replay: {stats:?}"
        );
        assert_eq!(
            stats.plan_hits + stats.plan_misses,
            report.stats.batches,
            "every dispatched batch does exactly one plan-cache lookup"
        );
        assert_eq!(
            stats.plan_entries, stats.plan_misses,
            "each miss memoizes exactly one entry"
        );
        assert_eq!(stats.plan_invalidated, 0);
    }

    #[test]
    fn plan_memo_never_skips_the_cache_entirely() {
        let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
        let run = |memo: PlanMemo| {
            let mut service = Service::builder()
                .device(ibm::toronto())
                .strategy(strategy::qucp(4.0))
                .max_parallel(2)
                .seed(42)
                .plan_memo(memo)
                .build()
                .unwrap();
            for i in 0..4u64 {
                service
                    .submit(JobRequest::new(bell.clone(), i as f64 * 100.0).with_id(i))
                    .unwrap();
            }
            let report = service.run_until_drained().unwrap();
            (report, service.route_cache_stats())
        };
        let (memoized_report, memoized) = run(PlanMemo::EpochKeyed);
        let (fresh_report, fresh) = run(PlanMemo::Never);
        assert_eq!(
            memoized_report, fresh_report,
            "memoization must be observationally invisible"
        );
        assert_eq!(
            (fresh.plan_hits, fresh.plan_misses, fresh.plan_entries),
            (0, 0, 0),
            "the ablation never consults or fills the plan cache"
        );
        assert!(memoized.plan_hits >= 1);
    }

    #[test]
    fn memoized_unplaceable_outcome_replays_from_the_cache() {
        let mut service = fifo_service(2);
        // 64 qubits cannot run alone on the 27-qubit Toronto; the
        // failed plan is memoized like a committed one.
        let wide = qucp_circuit::Circuit::new(64);
        service
            .submit(JobRequest::new(wide, 0.0).with_id(7))
            .unwrap();
        let err = service.run_until_drained().unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::JobUnplaceable { job_id: 7, .. }
        ));
        let stats = service.route_cache_stats();
        assert_eq!((stats.plan_hits, stats.plan_misses), (0, 1));
        // The job stays queued; retrying replays the memoized failure
        // (a hit, not a second fresh plan) re-bound to the batch head.
        let err = service.run_until_drained().unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::JobUnplaceable { job_id: 7, .. }
        ));
        let stats = service.route_cache_stats();
        assert_eq!((stats.plan_hits, stats.plan_misses), (1, 1));
    }

    #[test]
    fn recalibration_drops_plan_entries_with_the_probes() {
        let bell = qucp_circuit::library::by_name("bell").unwrap().circuit();
        let mut service = fifo_service(2);
        for i in 0..2u64 {
            service
                .submit(JobRequest::new(bell.clone(), i as f64 * 100.0).with_id(i))
                .unwrap();
        }
        service.run_until_drained().unwrap();
        let before = service.route_cache_stats();
        assert!(before.plan_entries >= 1);
        let (id, snapshot) = {
            let (id, d) = service.registry().iter().next().unwrap();
            (id, d.calibration().clone())
        };
        service.recalibrate(id, snapshot).unwrap();
        let after = service.route_cache_stats();
        assert_eq!(
            after.plan_entries, 0,
            "the epoch bump drops the device's plans"
        );
        assert_eq!(after.plan_invalidated, before.plan_entries);
    }
}
