//! Criterion benchmark: the full parallel-execution pipeline (Fig. 3
//! style workload) end to end, per strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use qucp_bench::combo_circuits;
use qucp_core::{execute_parallel, plan_workload, strategy, ParallelConfig};
use qucp_device::ibm;
use qucp_sim::ExecutionConfig;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let device = ibm::toronto();
    let programs = combo_circuits(&["adder", "fred", "alu"]);
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    group.bench_function("plan_only_qucp", |b| {
        b.iter(|| {
            black_box(plan_workload(
                &device,
                &programs,
                &strategy::qucp(4.0),
                true,
            ))
        })
    });

    for (name, strat) in [("qucp", strategy::qucp(4.0)), ("cna", strategy::cna())] {
        let cfg = ParallelConfig {
            execution: ExecutionConfig::default().with_shots(512).with_seed(5),
            optimize: true,
        };
        group.bench_function(format!("execute_512shots_{name}"), |b| {
            b.iter(|| black_box(execute_parallel(&device, &programs, &strat, &cfg).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
