//! Criterion benchmark: initial mapping + SWAP routing of the Table II
//! benchmarks onto Toronto partitions.

use criterion::{criterion_group, criterion_main, Criterion};
use qucp_circuit::library;
use qucp_core::{allocate_partitions, map_program, CrosstalkTreatment, PartitionPolicy};
use qucp_device::ibm;
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let device = ibm::toronto();
    let mut group = c.benchmark_group("map_program");
    group.sample_size(30);
    for name in ["adder", "4mod5-v1_22", "alu-v0_27", "variation"] {
        let circuit = library::by_name(name).unwrap().circuit();
        let allocs = allocate_partitions(
            &device,
            &[&circuit],
            &PartitionPolicy::NoiseAware(CrosstalkTreatment::Sigma(4.0)),
        )
        .unwrap();
        let partition = allocs[0].qubits.clone();
        group.bench_function(name, |b| {
            b.iter(|| black_box(map_program(&device, &partition, &circuit)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
