//! Criterion benchmark: noisy trajectory simulation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qucp_circuit::library;
use qucp_device::ibm;
use qucp_sim::{run_noisy, ExecutionConfig, NoiseScaling};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let device = ibm::toronto();
    let mut group = c.benchmark_group("run_noisy_1024_shots");
    group.sample_size(15);
    for name in ["fredkin", "adder", "alu-v0_27", "variation"] {
        let circuit = library::by_name(name).unwrap().circuit();
        // A path-shaped partition that fits each width; route first so
        // every gate is executable.
        let layout: Vec<usize> = match circuit.width() {
            3 => vec![0, 1, 2],
            4 => vec![0, 1, 2, 3],
            _ => vec![0, 1, 2, 3, 5],
        };
        let mapped = qucp_core::map_program(&device, &layout, &circuit);
        let cfg = ExecutionConfig::default().with_shots(1024).with_seed(1);
        let scaling = NoiseScaling::uniform(mapped.circuit.gate_count());
        group.bench_with_input(BenchmarkId::from_parameter(name), &mapped, |b, mp| {
            b.iter(|| {
                black_box(run_noisy(&mp.circuit, &mp.layout, &device, &scaling, &cfg).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
