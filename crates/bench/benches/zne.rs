//! Criterion benchmark: folding and extrapolation kernels of digital
//! ZNE.

use criterion::{criterion_group, criterion_main, Criterion};
use qucp_circuit::library;
use qucp_zne::{fold_gates_at_random, standard_factories};
use std::hint::black_box;

fn bench_zne(c: &mut Criterion) {
    let mut group = c.benchmark_group("zne");
    let circuit = library::by_name("variation").unwrap().circuit();

    group.bench_function("fold_scale_2.5", |b| {
        b.iter(|| black_box(fold_gates_at_random(&circuit, 2.5, 7)))
    });

    group.bench_function("extrapolate_all_factories", |b| {
        let samples = [(1.0, 0.82), (1.5, 0.71), (2.0, 0.60), (2.5, 0.52)];
        b.iter(|| {
            for f in standard_factories() {
                black_box(f.extrapolate(&samples).unwrap());
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_zne);
criterion_main!(benches);
