//! Criterion benchmark: service-runtime throughput (jobs served per
//! second of wall clock) at 1/2/4-way packing, the concurrency gain of
//! threaded batch execution, and an admission-policy comparison on a
//! skewed-arrival workload (wide GHZ jobs blocking the FIFO head of
//! line).
//!
//! Dedicated (1-way) service is the baseline the paper argues against.
//! Besides wall-clock numbers, the skewed group prints the *simulated*
//! mean turnaround per policy once at start-up, so the scheduling win
//! (Backfill/SJF over FIFO) is visible next to the runtime cost of the
//! smarter policies; the win itself is pinned by
//! `tests/integration_service.rs`, not asserted here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qucp_core::strategy;
use qucp_device::ibm;
use qucp_runtime::{
    skewed_jobs, synthetic_jobs, AdmissionPolicy, Backfill, ExecutionMode, Fifo, Job, JobRequest,
    Service, ServiceReport, ShortestJobFirst,
};
use std::hint::black_box;

fn serve(
    jobs: &[Job],
    policy: impl AdmissionPolicy + 'static,
    device: qucp_device::Device,
    max_parallel: usize,
    mode: ExecutionMode,
) -> ServiceReport {
    let mut service = Service::builder()
        .device(device)
        .strategy(strategy::qucp(4.0))
        .policy(policy)
        .max_parallel(max_parallel)
        .seed(0xBE7C)
        .mode(mode)
        .build()
        .expect("build");
    for job in jobs {
        service.submit(JobRequest::from_job(job)).expect("submit");
    }
    service.run_until_drained().expect("drain")
}

fn bench_scheduler(c: &mut Criterion) {
    let jobs = synthetic_jobs(12, 300.0, 256, 0xBE7C);
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);

    for k in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("throughput", k), &k, |b, &k| {
            b.iter(|| {
                black_box(serve(
                    &jobs,
                    Fifo,
                    ibm::toronto(),
                    k,
                    ExecutionMode::Concurrent,
                ))
            })
        });
    }

    // Concurrency gain at fixed packing: serial vs threaded batches.
    group.bench_function("serial_4way", |b| {
        b.iter(|| black_box(serve(&jobs, Fifo, ibm::toronto(), 4, ExecutionMode::Serial)))
    });
    group.finish();

    // Admission policies on a skewed burst: every third job a
    // 13-qubit GHZ chain that monopolises the 15-qubit Melbourne chip.
    let skewed = skewed_jobs(12, 13, 50.0, 128, 7);
    let fifo = serve(
        &skewed,
        Fifo,
        ibm::melbourne(),
        3,
        ExecutionMode::Concurrent,
    );
    let backfill = serve(
        &skewed,
        Backfill { max_overtakes: 2 },
        ibm::melbourne(),
        3,
        ExecutionMode::Concurrent,
    );
    let sjf = serve(
        &skewed,
        ShortestJobFirst,
        ibm::melbourne(),
        3,
        ExecutionMode::Concurrent,
    );
    eprintln!(
        "skewed-arrival simulated mean turnaround (ns): \
         FIFO {:.0} | Backfill {:.0} ({:.2}x) | SJF {:.0} ({:.2}x)",
        fifo.stats.mean_turnaround,
        backfill.stats.mean_turnaround,
        fifo.stats.mean_turnaround / backfill.stats.mean_turnaround,
        sjf.stats.mean_turnaround,
        fifo.stats.mean_turnaround / sjf.stats.mean_turnaround,
    );
    let mut skew_group = c.benchmark_group("scheduler_skewed");
    skew_group.sample_size(10);
    skew_group.bench_function("fifo_3way", |b| {
        b.iter(|| {
            black_box(serve(
                &skewed,
                Fifo,
                ibm::melbourne(),
                3,
                ExecutionMode::Concurrent,
            ))
        })
    });
    skew_group.bench_function("backfill_3way", |b| {
        b.iter(|| {
            black_box(serve(
                &skewed,
                Backfill { max_overtakes: 2 },
                ibm::melbourne(),
                3,
                ExecutionMode::Concurrent,
            ))
        })
    });
    skew_group.bench_function("sjf_3way", |b| {
        b.iter(|| {
            black_box(serve(
                &skewed,
                ShortestJobFirst,
                ibm::melbourne(),
                3,
                ExecutionMode::Concurrent,
            ))
        })
    });
    skew_group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
