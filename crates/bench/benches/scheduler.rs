//! Criterion benchmark: batch-scheduler throughput (jobs served per
//! second of wall clock) at 1/2/4-way packing, plus the planning-only
//! cost of batch formation.
//!
//! Dedicated (1-way) service is the baseline the paper argues against;
//! the interesting read-out is how much wall-clock the *runtime itself*
//! gains from co-scheduling, on top of the simulated-hardware gains the
//! queue stats report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qucp_core::strategy;
use qucp_device::ibm;
use qucp_runtime::{synthetic_jobs, BatchScheduler, ExecutionMode, RuntimeConfig};
use std::hint::black_box;

fn cfg(max_parallel: usize, mode: ExecutionMode) -> RuntimeConfig {
    RuntimeConfig {
        max_parallel,
        fidelity_threshold: None,
        seed: 0xBE7C,
        optimize: true,
        mode,
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let jobs = synthetic_jobs(12, 300.0, 256, 0xBE7C);
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);

    for k in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("throughput", k), &k, |b, &k| {
            let scheduler = BatchScheduler::new(
                ibm::toronto(),
                strategy::qucp(4.0),
                cfg(k, ExecutionMode::Concurrent),
            );
            b.iter(|| black_box(scheduler.run(&jobs).expect("run")))
        });
    }

    // Concurrency gain at fixed packing: serial vs threaded batches.
    group.bench_function("serial_4way", |b| {
        let scheduler = BatchScheduler::new(
            ibm::toronto(),
            strategy::qucp(4.0),
            cfg(4, ExecutionMode::Serial),
        );
        b.iter(|| black_box(scheduler.run(&jobs).expect("run")))
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
