//! Criterion benchmark: the cost of SRB characterization per pair —
//! the overhead QuCP's σ parameter eliminates.

use criterion::{criterion_group, criterion_main, Criterion};
use qucp_device::{ibm, LinkPair};
use qucp_srb::{characterize_pair, fit_decay, rb_circuit, srb_groups, RbConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_srb(c: &mut Criterion) {
    let device = ibm::toronto();
    let mut group = c.benchmark_group("srb");
    group.sample_size(10);

    group.bench_function("grouping_toronto", |b| {
        b.iter(|| black_box(srb_groups(device.topology())))
    });

    group.bench_function("rb_circuit_m16", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(rb_circuit(16, &mut rng))
        })
    });

    group.bench_function("fit_decay_6pts", |b| {
        let samples: Vec<(usize, f64)> = [1usize, 4, 8, 16, 32, 48]
            .iter()
            .map(|&m| (m, 0.72 * 0.93f64.powi(m as i32) + 0.26))
            .collect();
        b.iter(|| black_box(fit_decay(&samples)))
    });

    group.bench_function("characterize_one_pair", |b| {
        let pair: LinkPair = device.topology().one_hop_link_pairs()[0];
        let cfg = RbConfig {
            lengths: vec![1, 8, 16],
            seeds: 1,
            shots: 128,
            base_seed: 7,
        };
        b.iter(|| black_box(characterize_pair(&device, pair, &cfg)))
    });

    group.finish();
}

criterion_group!(benches, bench_srb);
criterion_main!(benches);
