//! Criterion benchmark: qubit-partition allocation throughput — the
//! compile-time cost QuCP pays instead of SRB's runtime cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qucp_bench::combo_circuits;
use qucp_core::{allocate_partitions, candidate_partitions, strategy, PartitionPolicy};
use qucp_device::ibm;
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_partitions");
    group.sample_size(20);
    for (name, device) in [("toronto", ibm::toronto()), ("manhattan", ibm::manhattan())] {
        for size in [3usize, 5] {
            group.bench_with_input(BenchmarkId::new(name, size), &size, |b, &size| {
                let empty = BTreeSet::new();
                b.iter(|| black_box(candidate_partitions(&device, size, &empty)))
            });
        }
    }
    group.finish();
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate_three_programs");
    group.sample_size(20);
    let programs = combo_circuits(&["adder", "fred", "alu"]);
    let refs: Vec<&qucp_circuit::Circuit> = programs.iter().collect();
    for (name, device) in [("toronto", ibm::toronto()), ("manhattan", ibm::manhattan())] {
        for (policy_name, strat) in [
            ("qucp", strategy::qucp(4.0)),
            ("cna", strategy::cna()),
            ("qucloud", strategy::qucloud()),
        ] {
            let policy: PartitionPolicy = strat.partition.clone();
            group.bench_function(format!("{name}/{policy_name}"), |b| {
                b.iter(|| black_box(allocate_partitions(&device, &refs, &policy).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_candidates, bench_allocation);
criterion_main!(benches);
