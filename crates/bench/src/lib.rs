//! # qucp-bench
//!
//! Shared fixtures for the experiment-regeneration binaries and the
//! Criterion benchmarks: the exact benchmark combinations of the
//! paper's figures and the standard experiment configurations.
//!
//! Regenerate any paper artifact with, e.g.:
//!
//! ```text
//! cargo run --release -p qucp-bench --bin table1
//! cargo run --release -p qucp-bench --bin fig3
//! ```

#![warn(missing_docs)]

pub mod srb_campaign;

use qucp_circuit::{library, Circuit};

/// The Fig. 3a workloads (JSD benchmarks, three simultaneous circuits):
/// four same-benchmark triples and four mixed triples, in figure order.
pub const FIG3A_COMBOS: [[&str; 3]; 8] = [
    ["lin", "lin", "lin"],
    ["qec", "qec", "qec"],
    ["var", "var", "var"],
    ["bell", "bell", "bell"],
    ["qec", "var", "bell"],
    ["qec", "bell", "lin"],
    ["var", "bell", "lin"],
    ["qec", "var", "lin"],
];

/// The Fig. 3b workloads (PST benchmarks).
pub const FIG3B_COMBOS: [[&str; 3]; 8] = [
    ["adder", "adder", "adder"],
    ["4mod", "4mod", "4mod"],
    ["fred", "fred", "fred"],
    ["alu", "alu", "alu"],
    ["adder", "fred", "alu"],
    ["adder", "4mod", "alu"],
    ["adder", "fred", "4mod"],
    ["4mod", "fred", "alu"],
];

/// A display label for a combination (`qec-var-bell` or `lin ×3`).
pub fn combo_label(combo: &[&str; 3]) -> String {
    if combo[0] == combo[1] && combo[1] == combo[2] {
        format!("{} x3", combo[0])
    } else {
        combo.join("-")
    }
}

/// Materializes a combination into circuits (instances get unique
/// names so reports stay readable).
///
/// # Panics
///
/// Panics if a name is not in the benchmark library.
pub fn combo_circuits(combo: &[&str; 3]) -> Vec<Circuit> {
    combo
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut c = library::by_name(name)
                .unwrap_or_else(|| panic!("unknown benchmark `{name}`"))
                .circuit();
            c.set_name(format!("{name}#{i}"));
            c
        })
        .collect()
}

/// The shot count used by the paper's jobs.
pub const PAPER_SHOTS: usize = 8192;

/// The workspace-wide experiment seed.
pub const EXPERIMENT_SEED: u64 = 20220314;

/// The trajectory-engine benchmark job: an 8-qubit GHZ chain planned
/// solo on IBM Q Toronto by the QuCP pipeline. Shared between the
/// Criterion `trajectory` bench and the `trajectory` bin so both
/// measure exactly the same mapped job.
///
/// # Panics
///
/// Panics if the GHZ chain cannot be planned on Toronto (which would
/// be a pipeline regression).
pub fn trajectory_job() -> (qucp_device::Device, qucp_core::pipeline::PlannedWorkload) {
    use qucp_core::pipeline::Pipeline;
    use qucp_core::strategy;
    let device = qucp_device::ibm::toronto();
    let ghz = library::ghz(8);
    let plan = Pipeline::from_strategy(&strategy::qucp(4.0))
        .plan(&device, &[ghz], true)
        .expect("GHZ-8 must plan on Toronto");
    (device, plan)
}

/// Runs program 0 of a [`trajectory_job`] plan under `parallelism`
/// with [`PAPER_SHOTS`] shots on the default
/// [`Replay`](qucp_sim::TrajectoryKernel::Replay) kernel.
///
/// # Panics
///
/// Panics if the mapped job is rejected by the simulator.
pub fn run_trajectory_job(
    device: &qucp_device::Device,
    plan: &qucp_core::pipeline::PlannedWorkload,
    parallelism: qucp_sim::ShotParallelism,
) -> qucp_sim::Counts {
    run_trajectory_job_with_kernel(
        device,
        plan,
        parallelism,
        qucp_sim::TrajectoryKernel::Replay,
    )
}

/// [`run_trajectory_job`] with an explicit trajectory kernel — the
/// benchmark's kernel dimension.
///
/// # Panics
///
/// Panics if the mapped job is rejected by the simulator.
pub fn run_trajectory_job_with_kernel(
    device: &qucp_device::Device,
    plan: &qucp_core::pipeline::PlannedWorkload,
    parallelism: qucp_sim::ShotParallelism,
    kernel: qucp_sim::TrajectoryKernel,
) -> qucp_sim::Counts {
    let exec = qucp_sim::ExecutionConfig::default()
        .with_shots(PAPER_SHOTS)
        .with_seed(EXPERIMENT_SEED)
        .with_parallelism(parallelism)
        .with_kernel(kernel);
    let mapped = &plan.mapped[0];
    qucp_sim::run_noisy_with_idle(
        &mapped.circuit,
        &mapped.layout,
        device,
        &plan.context.scalings[0],
        &plan.context.tail_idle[0],
        &exec,
    )
    .expect("mapped GHZ job must simulate")
}

/// The clean-shot probability of the [`trajectory_job`] workload — the
/// fraction of trajectories the `SurvivalSkip` kernel answers from the
/// cached ideal state (see [`qucp_sim::clean_shot_probability`]).
///
/// # Panics
///
/// Panics if the mapped job is rejected by the simulator.
pub fn trajectory_clean_shot_fraction(
    device: &qucp_device::Device,
    plan: &qucp_core::pipeline::PlannedWorkload,
) -> f64 {
    let mapped = &plan.mapped[0];
    qucp_sim::clean_shot_probability(
        &mapped.circuit,
        &mapped.layout,
        device,
        &plan.context.scalings[0],
        &plan.context.tail_idle[0],
        &qucp_sim::ExecutionConfig::default(),
    )
    .expect("mapped GHZ job must simulate")
}

/// Calibration seed of the [`noisy_toronto_twin`].
pub const NOISY_TWIN_SEED: u64 = 2700;

/// A chip with IBM Q Toronto's topology but a calibration degraded
/// roughly 3× across the board (CNOT error, readout error, and a hotter
/// crosstalk landscape) — the "bad day" twin of [`qucp_device::ibm::toronto`].
/// Together they form the skewed fleet of [`skewed_fleet`], the fixture
/// on which calibration-aware routing must beat earliest-free on
/// delivered fidelity.
pub fn noisy_toronto_twin() -> qucp_device::Device {
    use qucp_device::{Calibration, CrosstalkModel, CrosstalkProfile, NoiseProfile};
    let topo = qucp_device::ibm::toronto_topology();
    let base = NoiseProfile::default();
    let profile = NoiseProfile {
        cx_error: (base.cx_error.0 * 3.0, base.cx_error.1 * 3.0),
        readout_error: (base.readout_error.0 * 3.0, base.readout_error.1 * 3.0),
        sq_error: (base.sq_error.0 * 3.0, base.sq_error.1 * 3.0),
        ..base
    };
    let cal = Calibration::synthesize(&topo, NOISY_TWIN_SEED, &profile);
    let xtalk = CrosstalkModel::synthesize(
        &topo,
        NOISY_TWIN_SEED + qucp_device::ibm::CROSSTALK_SEED_OFFSET,
        &CrosstalkProfile {
            strong_fraction: 0.4,
            ..CrosstalkProfile::default()
        },
    );
    qucp_device::Device::new("ibmq_toronto_noisy", topo, cal, xtalk)
}

/// The two-chip skewed fleet of the routing shoot-out: the **noisy**
/// twin registered first (so the earliest-free tie-break favours it —
/// calibration-aware routing has to *overcome* registration order, not
/// ride it), the well-calibrated Toronto second.
pub fn skewed_fleet() -> qucp_runtime::DeviceRegistry {
    let mut fleet = qucp_runtime::DeviceRegistry::new();
    fleet.register(noisy_toronto_twin());
    fleet.register(qucp_device::ibm::toronto());
    fleet
}

/// Outcome of one routing shoot-out run on the skewed fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ShootoutOutcome {
    /// Routing policy display name.
    pub policy: String,
    /// Mean EFS score over all delivered jobs (lower is better — the
    /// deterministic, execution-free fidelity estimate).
    pub mean_efs: f64,
    /// Mean JSD of the delivered counts against the ideal distribution
    /// (lower is better).
    pub mean_jsd: f64,
    /// Mean turnaround (ns).
    pub mean_turnaround: f64,
    /// Jobs served per device, in registration order
    /// `(device name, jobs)`.
    pub per_device_jobs: Vec<(String, usize)>,
    /// Planning-cache statistics after the drain.
    pub cache: qucp_runtime::RouteCacheStats,
}

/// Runs the routing shoot-out burst (18 small library jobs, 1024 shots)
/// on the [`skewed_fleet`] under `routing` and `mode`, and reduces the
/// drained report to the delivered-fidelity metrics. Deterministic:
/// serial and concurrent execution produce identical outcomes.
///
/// # Panics
///
/// Panics if the service rejects the fixture workload (a runtime
/// regression).
pub fn routing_shootout(
    routing: impl qucp_runtime::RoutingPolicy + 'static,
    mode: qucp_runtime::ExecutionMode,
) -> ShootoutOutcome {
    use qucp_runtime::{JobRequest, Service};
    let mut service = Service::builder()
        .registry(skewed_fleet())
        .strategy(qucp_core::strategy::qucp(4.0))
        .routing(routing)
        .max_parallel(3)
        .mode(mode)
        .seed(EXPERIMENT_SEED)
        .build()
        .expect("shoot-out service must build");
    for job in qucp_runtime::synthetic_jobs(18, 400.0, 1024, 0xF1EE7) {
        service
            .submit(JobRequest::from_job(&job))
            .expect("fixture job must submit");
    }
    let report = service
        .run_until_drained()
        .expect("shoot-out burst must drain");
    let n = report.job_results.len() as f64;
    ShootoutOutcome {
        policy: service.routing_name().to_string(),
        mean_efs: report.job_results.iter().map(|r| r.result.efs).sum::<f64>() / n,
        mean_jsd: report.job_results.iter().map(|r| r.result.jsd).sum::<f64>() / n,
        mean_turnaround: report.stats.mean_turnaround,
        per_device_jobs: report
            .per_device
            .iter()
            .map(|d| (d.device.clone(), d.jobs))
            .collect(),
        cache: service.route_cache_stats(),
    }
}

/// Simulated nanoseconds per drift step of the drift shoot-out.
pub const DRIFT_INTERVAL_NS: f64 = 50_000.0;

/// Drift steps the shoot-out advances between its two bursts.
pub const DRIFT_STEPS: u64 = 3;

/// Per-step seesaw rate: after [`DRIFT_STEPS`] steps the degrading chip
/// is `rate^steps ≈ 3.4×` worse and the improving chip `3.4×` better —
/// enough to decisively flip the skewed fleet's quality ordering.
pub const SEESAW_RATE: f64 = 1.5;

/// A deterministic cross-fade [`DriftModel`](qucp_device::DriftModel)
/// for the drift shoot-out: the device with salt 0 (the noisy twin,
/// registered first in [`skewed_fleet`]) *improves* by `1/rate` per
/// step while every other device *degrades* by `rate` — no RNG at all,
/// so the fleet's quality ordering flips at an exactly predictable
/// step. Crosstalk excesses (γ − 1) fade with the same factors.
///
/// This is deliberately not a realistic noise process (that is
/// [`GaussianWalk`](qucp_device::GaussianWalk)'s job); it is the
/// controlled experiment that isolates what stale routing data costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeesawDrift {
    /// Per-step multiplicative rate (> 1).
    pub rate: f64,
    /// Simulated nanoseconds per step.
    pub interval_ns: f64,
}

impl qucp_device::DriftModel for SeesawDrift {
    fn steps_at(&self, now: f64) -> u64 {
        qucp_device::interval_steps(now, self.interval_ns)
    }

    fn apply_step(
        &self,
        _step: u64,
        device_salt: u64,
        calibration: &mut qucp_device::Calibration,
        crosstalk: &mut qucp_device::CrosstalkModel,
    ) -> bool {
        let factor = if device_salt == 0 {
            1.0 / self.rate
        } else {
            self.rate
        };
        let mut changed = false;
        let mut scale = |v: &mut f64| {
            let next = (*v * factor).clamp(1e-6, 0.45);
            if next != *v {
                *v = next;
                changed = true;
            }
        };
        for (_, e) in calibration.cx_errors_mut() {
            scale(e);
        }
        for e in calibration.sq_errors_mut() {
            scale(e);
        }
        for e in calibration.readout_errors_mut() {
            scale(e);
        }
        for (_, g) in crosstalk.gammas_mut() {
            let next = (1.0 + (*g - 1.0) * factor).clamp(1.0, 64.0);
            if next != *g {
                *g = next;
                changed = true;
            }
        }
        changed
    }
}

/// Outcome of one drift shoot-out run (see [`drift_shootout`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftOutcome {
    /// The cache mode the run used.
    pub invalidation: qucp_runtime::CacheInvalidation,
    /// Mean EFS of the pre-drift burst (must agree between modes — the
    /// fleets are identical until the drift).
    pub mean_efs_before: f64,
    /// Mean JSD of the pre-drift burst.
    pub mean_jsd_before: f64,
    /// Mean EFS of the post-drift burst — the discriminating metric.
    pub mean_efs_after: f64,
    /// Mean JSD of the post-drift burst.
    pub mean_jsd_after: f64,
    /// Fleet-wide mean turnaround over both bursts (ns).
    pub mean_turnaround: f64,
    /// Calibration-epoch bumps the drift advance performed.
    pub epoch_bumps: usize,
    /// Post-drift jobs served per device, in registration order.
    pub fresh_jobs_per_device: Vec<(String, usize)>,
    /// Planning-cache statistics after both drains.
    pub cache: qucp_runtime::RouteCacheStats,
}

/// Runs the calibration-drift shoot-out on the [`skewed_fleet`] under
/// `invalidation` and `mode`: a 9-job burst on the original
/// calibrations, then [`DRIFT_STEPS`] [`SeesawDrift`] steps that flip
/// which chip is good (the noisy twin anneals, the good Toronto
/// degrades ~3.4×), then a second 9-job burst. `CalibrationAware`
/// routing probes through the cross-batch cache both times — under
/// [`CacheInvalidation::EpochAware`](qucp_runtime::CacheInvalidation)
/// the epoch bumps drop the stale probes and the second burst re-routes
/// to the *currently* good chip; under `Never` the second burst keeps
/// chasing the pre-drift ranking. Deterministic: serial and concurrent
/// execution produce identical outcomes.
///
/// # Panics
///
/// Panics if the service rejects the fixture workload (a runtime
/// regression).
pub fn drift_shootout(
    invalidation: qucp_runtime::CacheInvalidation,
    mode: qucp_runtime::ExecutionMode,
) -> DriftOutcome {
    use qucp_runtime::{CalibrationAware, JobRequest, Service};
    let mut service = Service::builder()
        .registry(skewed_fleet())
        .strategy(qucp_core::strategy::qucp(4.0))
        .routing(CalibrationAware::default())
        .drift(SeesawDrift {
            rate: SEESAW_RATE,
            interval_ns: DRIFT_INTERVAL_NS,
        })
        .cache_invalidation(invalidation)
        .max_parallel(3)
        .mode(mode)
        .seed(EXPERIMENT_SEED)
        .build()
        .expect("drift shoot-out service must build");
    let burst = qucp_runtime::synthetic_jobs(9, 400.0, 1024, 0xF1EE7);
    for job in &burst {
        service
            .submit(JobRequest::from_job(job))
            .expect("fixture job must submit");
    }
    service
        .run_until_drained()
        .expect("pre-drift burst must drain");

    // The calibrations cross-fade; with epoch-aware caching every bump
    // also drops the bumped chip's cached probes.
    let epoch_bumps = service
        .advance_drift(DRIFT_STEPS as f64 * DRIFT_INTERVAL_NS)
        .expect("drift advance must succeed");

    // Same workload again, long after the first burst drained; ids are
    // offset so the two bursts stay distinguishable in the report.
    const FRESH_ID_OFFSET: u64 = 100;
    const FRESH_ARRIVAL_OFFSET: f64 = 1e7;
    for job in &burst {
        service
            .submit(
                JobRequest::new(job.circuit.clone(), job.arrival + FRESH_ARRIVAL_OFFSET)
                    .with_id(job.id + FRESH_ID_OFFSET)
                    .with_shots(job.shots),
            )
            .expect("fixture job must submit");
    }
    let report = service
        .run_until_drained()
        .expect("post-drift burst must drain");

    let n = burst.len();
    let mean = |f: &dyn Fn(&qucp_runtime::JobResult) -> f64, range: std::ops::Range<usize>| {
        report.job_results[range.clone()].iter().map(f).sum::<f64>() / range.len() as f64
    };
    let mut fresh_jobs_per_device: Vec<(String, usize)> = report
        .per_device
        .iter()
        .map(|d| (d.device.clone(), 0))
        .collect();
    for batch in &report.batches {
        if batch.job_ids.iter().any(|&id| id >= FRESH_ID_OFFSET) {
            if let Some(slot) = fresh_jobs_per_device
                .iter_mut()
                .find(|(name, _)| *name == batch.device)
            {
                slot.1 += batch.job_ids.len();
            }
        }
    }
    DriftOutcome {
        invalidation,
        mean_efs_before: mean(&|r| r.result.efs, 0..n),
        mean_jsd_before: mean(&|r| r.result.jsd, 0..n),
        mean_efs_after: mean(&|r| r.result.efs, n..2 * n),
        mean_jsd_after: mean(&|r| r.result.jsd, n..2 * n),
        mean_turnaround: report.stats.mean_turnaround,
        epoch_bumps,
        fresh_jobs_per_device,
        cache: service.route_cache_stats(),
    }
}

// ---------------------------------------------------------------------------
// Fleet scale-out: the mega-fleet fixture and the heavy-traffic workload.
// ---------------------------------------------------------------------------

/// Error-rate scale cycle of the [`mega_fleet`] calibrations: each chip
/// takes the next factor, so the fleet mixes well-calibrated and noisy
/// chips of every topology class.
pub const FLEET_NOISE_SCALES: [f64; 5] = [1.0, 1.8, 0.7, 2.6, 1.3];

/// A generated heterogeneous fleet of `devices` chips for the
/// heavy-traffic shoot-out. Topologies cycle through four classes — an
/// 8-qubit ring, a 3×4 grid, a 16-qubit line, and IBM Q Toronto's
/// 27-qubit heavy-hex graph — and every chip gets its own synthesized
/// calibration (seeded by `seed + index`) with the error-rate scale
/// cycling through [`FLEET_NOISE_SCALES`]. Deterministic in
/// `(devices, seed)`; names encode position and width
/// (`mega-007-w16`).
pub fn mega_fleet(devices: usize, seed: u64) -> qucp_runtime::DeviceRegistry {
    use qucp_device::{Calibration, CrosstalkModel, CrosstalkProfile, NoiseProfile, Topology};
    let mut fleet = qucp_runtime::DeviceRegistry::new();
    for i in 0..devices {
        let topo = match i % 4 {
            0 => Topology::ring(8),
            1 => Topology::grid(3, 4),
            2 => Topology::line(16),
            _ => qucp_device::ibm::toronto_topology(),
        };
        let base = NoiseProfile::default();
        let scale = FLEET_NOISE_SCALES[i % FLEET_NOISE_SCALES.len()];
        let profile = NoiseProfile {
            cx_error: (base.cx_error.0 * scale, base.cx_error.1 * scale),
            sq_error: (base.sq_error.0 * scale, base.sq_error.1 * scale),
            readout_error: (base.readout_error.0 * scale, base.readout_error.1 * scale),
            ..base
        };
        let chip_seed = seed.wrapping_add(i as u64);
        let cal = Calibration::synthesize(&topo, chip_seed, &profile);
        let xtalk = CrosstalkModel::synthesize(
            &topo,
            chip_seed.wrapping_add(qucp_device::ibm::CROSSTALK_SEED_OFFSET),
            &CrosstalkProfile::default(),
        );
        let width = topo.num_qubits();
        fleet.register(qucp_device::Device::new(
            format!("mega-{i:03}-w{width}"),
            topo,
            cal,
            xtalk,
        ));
    }
    fleet
}

/// Generates a deterministic heavy-traffic job stream: `n` small
/// library circuits with **exponential** inter-arrival gaps of mean
/// `mean_gap_ns` — a Poisson arrival process, the open-system traffic
/// of the paper's Sec. II-A queue model — cycling the same six
/// benchmarks as [`qucp_runtime::synthetic_jobs`].
pub fn poisson_jobs(n: usize, mean_gap_ns: f64, shots: usize, seed: u64) -> Vec<qucp_runtime::Job> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    const NAMES: [&str; 6] = [
        "bell",
        "fredkin",
        "linearsolver",
        "variation",
        "alu-v0_27",
        "qec",
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|i| {
            // Inverse-CDF exponential sample; `1 - u` keeps the `ln`
            // argument in (0, 1] so every gap is finite.
            let u: f64 = rng.gen();
            t += -mean_gap_ns.max(f64::MIN_POSITIVE) * (1.0 - u).ln();
            let name = NAMES[i % NAMES.len()];
            let mut circuit = library::by_name(name)
                .unwrap_or_else(|| panic!("library benchmark {name} missing"))
                .circuit();
            circuit.set_name(format!("{name}#{i}"));
            qucp_runtime::Job {
                id: i as u64,
                circuit,
                shots,
                arrival: t,
            }
        })
        .collect()
}

/// Mean Poisson inter-arrival gap of the fleet shoot-out workload (ns).
/// Far below per-batch service time, so the queue backs up and the
/// dispatch loop operates deep in the heavy-traffic regime the index
/// layer exists for.
pub const FLEET_MEAN_GAP_NS: f64 = 100.0;

/// Outcome of one heavy-traffic fleet shoot-out run (see
/// [`fleet_shootout`]). Timings are wall-clock and therefore
/// machine-dependent; the simulated-schedule fields
/// (`mean_turnaround_ns`, `p99_turnaround_ns`) are deterministic.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Fleet size the run used.
    pub devices: usize,
    /// Jobs submitted (all complete by drain).
    pub jobs: usize,
    /// Queue path of the run ([`QueueIndexing::Linear`] is the
    /// seed-path ablation).
    ///
    /// [`QueueIndexing::Linear`]: qucp_runtime::QueueIndexing::Linear
    pub indexing: qucp_runtime::QueueIndexing,
    /// Wall-clock nanoseconds spent scheduling: submit + dispatch-loop
    /// time with the simulator's execution wall time *and* the
    /// planner's mapping/partitioning wall time subtracted out (see
    /// `qucp_runtime::Service::execution_time_ns` and
    /// `qucp_runtime::Service::planning_time_ns`) — both are workload
    /// costs identical on either queue path.
    pub dispatch_ns: u64,
    /// Dispatch-loop nanoseconds per job — the headline metric.
    pub dispatch_ns_per_job: f64,
    /// Scheduling throughput: jobs per wall-clock second of dispatch
    /// time.
    pub jobs_per_sec: f64,
    /// Mean simulated turnaround (ns).
    pub mean_turnaround_ns: f64,
    /// 99th-percentile simulated turnaround (ns).
    pub p99_turnaround_ns: f64,
    /// Plan-memoization mode of the run ([`PlanMemo::Never`] is the
    /// every-batch-replans ablation).
    ///
    /// [`PlanMemo::Never`]: qucp_runtime::PlanMemo::Never
    pub plan_memo: qucp_runtime::PlanMemo,
    /// Dispatch-sharding mode of the run.
    pub sharding: qucp_runtime::DispatchSharding,
    /// Wall-clock planning nanoseconds per job
    /// (`Service::planning_time_ns` over the job count) — what the plan
    /// cache exists to cut. Cache hits contribute nothing here: replay
    /// is bookkeeping, not planning.
    pub planning_ns_per_job: f64,
    /// Plan-cache hit rate over all lookups (0 under
    /// [`PlanMemo::Never`], which never looks up).
    ///
    /// [`PlanMemo::Never`]: qucp_runtime::PlanMemo::Never
    pub plan_hit_rate: f64,
}

/// Runs the heavy-traffic fleet shoot-out: `jobs` Poisson-arrival
/// library jobs ([`poisson_jobs`], 1 shot each so scheduling dominates
/// the wall clock) drained FIFO through a [`mega_fleet`] of `devices`
/// chips under `indexing`, with earliest-free routing and up to 4
/// circuits per batch. Returns the wall-clock outcome plus the full
/// drained report; both queue paths must produce identical reports
/// (asserted by the `fleet_shootout` bin and the `integration_fleet`
/// suite).
///
/// # Panics
///
/// Panics if `jobs` is zero or the service rejects the fixture
/// workload (a runtime regression).
pub fn fleet_shootout(
    devices: usize,
    jobs: usize,
    indexing: qucp_runtime::QueueIndexing,
    mode: qucp_runtime::ExecutionMode,
) -> (FleetOutcome, qucp_runtime::ServiceReport) {
    fleet_shootout_with(
        devices,
        jobs,
        indexing,
        mode,
        qucp_runtime::PlanMemo::default(),
        qucp_runtime::DispatchSharding::default(),
        None,
    )
}

/// [`fleet_shootout`] with the planning and sharding seams exposed:
/// `plan_memo` toggles whole-plan memoization ([`PlanMemo::Never`] is
/// the every-batch-replans ablation), `sharding` +
/// `device_groups` run execution on per-group scoped workers. All
/// configurations must produce bit-identical drained reports (asserted
/// by the `fleet_shootout` bin and the `integration_fleet` suite).
///
/// [`PlanMemo::Never`]: qucp_runtime::PlanMemo::Never
///
/// # Panics
///
/// Panics if `jobs` is zero or the service rejects the fixture
/// workload (a runtime regression).
pub fn fleet_shootout_with(
    devices: usize,
    jobs: usize,
    indexing: qucp_runtime::QueueIndexing,
    mode: qucp_runtime::ExecutionMode,
    plan_memo: qucp_runtime::PlanMemo,
    sharding: qucp_runtime::DispatchSharding,
    device_groups: Option<usize>,
) -> (FleetOutcome, qucp_runtime::ServiceReport) {
    use qucp_runtime::{JobRequest, Service};
    assert!(jobs > 0, "fleet shoot-out needs at least one job");
    let mut builder = Service::builder()
        .registry(mega_fleet(devices, EXPERIMENT_SEED))
        .strategy(qucp_core::strategy::qucp(4.0))
        .max_parallel(4)
        .mode(mode)
        .seed(EXPERIMENT_SEED)
        .queue_indexing(indexing)
        .plan_memo(plan_memo)
        .dispatch_sharding(sharding);
    if let Some(groups) = device_groups {
        builder = builder.device_groups(groups);
    }
    let mut service = builder.build().expect("fleet shoot-out service must build");
    let stream = poisson_jobs(jobs, FLEET_MEAN_GAP_NS, 1, 0xF1EE7);
    let started = std::time::Instant::now();
    for job in &stream {
        service
            .submit(JobRequest::from_job(job))
            .expect("fixture job must submit");
    }
    let report = service
        .run_until_drained()
        .expect("fleet shoot-out must drain");
    let wall_ns = started.elapsed().as_nanos() as u64;
    // Execution (trajectory simulation) and planning (mapping /
    // partitioning) are workload costs, identical on both queue paths;
    // what remains after subtracting them is the dispatch loop itself —
    // the queue bookkeeping this shoot-out exists to measure.
    let dispatch_ns = wall_ns
        .saturating_sub(service.execution_time_ns())
        .saturating_sub(service.planning_time_ns())
        .max(1);
    let mut turnarounds: Vec<f64> = report.job_results.iter().map(|r| r.turnaround).collect();
    turnarounds.sort_by(f64::total_cmp);
    let p99_turnaround_ns =
        turnarounds[((turnarounds.len() as f64 * 0.99).ceil() as usize).saturating_sub(1)];
    let cache = service.route_cache_stats();
    let plan_lookups = cache.plan_hits + cache.plan_misses;
    let outcome = FleetOutcome {
        devices,
        jobs,
        indexing,
        dispatch_ns,
        dispatch_ns_per_job: dispatch_ns as f64 / jobs as f64,
        jobs_per_sec: jobs as f64 / (dispatch_ns as f64 * 1e-9),
        mean_turnaround_ns: report.stats.mean_turnaround,
        p99_turnaround_ns,
        plan_memo,
        sharding,
        planning_ns_per_job: service.planning_time_ns() as f64 / jobs as f64,
        plan_hit_rate: if plan_lookups > 0 {
            cache.plan_hits as f64 / plan_lookups as f64
        } else {
            0.0
        },
    };
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_fleet_is_actually_skewed() {
        let good = qucp_device::ibm::toronto();
        let noisy = noisy_toronto_twin();
        assert_eq!(good.topology(), noisy.topology());
        assert!(
            noisy.calibration().mean_cx_error() > 2.0 * good.calibration().mean_cx_error(),
            "noisy twin must be clearly worse"
        );
        assert!(
            noisy.calibration().mean_readout_error()
                > 2.0 * good.calibration().mean_readout_error()
        );
        let fleet = skewed_fleet();
        assert_eq!(fleet.len(), 2);
        // Noisy first: the earliest-free tie-break must favour it.
        assert_eq!(fleet.iter().next().unwrap().1.name(), "ibmq_toronto_noisy");
    }

    #[test]
    fn combos_reference_known_benchmarks() {
        for combo in FIG3A_COMBOS.iter().chain(FIG3B_COMBOS.iter()) {
            let circuits = combo_circuits(combo);
            assert_eq!(circuits.len(), 3);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(combo_label(&["lin", "lin", "lin"]), "lin x3");
        assert_eq!(combo_label(&["qec", "var", "bell"]), "qec-var-bell");
    }

    #[test]
    fn fig3a_is_distribution_benchmarks() {
        use qucp_circuit::library::ResultKind;
        for combo in &FIG3A_COMBOS {
            for name in combo {
                let b = library::by_name(name).unwrap();
                assert_eq!(b.result, ResultKind::Distribution, "{name}");
            }
        }
    }

    #[test]
    fn mega_fleet_is_deterministic_and_heterogeneous() {
        let a = mega_fleet(9, EXPERIMENT_SEED);
        let b = mega_fleet(9, EXPERIMENT_SEED);
        assert_eq!(a.len(), 9);
        for ((_, da), (_, db)) in a.iter().zip(b.iter()) {
            assert_eq!(da.name(), db.name());
            assert_eq!(da.topology(), db.topology());
            assert_eq!(da.calibration(), db.calibration());
        }
        // All four topology classes appear, and names encode widths.
        let widths: std::collections::BTreeSet<usize> =
            a.iter().map(|(_, d)| d.num_qubits()).collect();
        assert_eq!(widths, [8, 12, 16, 27].into_iter().collect());
        assert_eq!(a.iter().next().unwrap().1.name(), "mega-000-w8");
        // Different seeds give different calibrations.
        let c = mega_fleet(9, EXPERIMENT_SEED + 1);
        assert_ne!(
            a.iter().next().unwrap().1.calibration(),
            c.iter().next().unwrap().1.calibration()
        );
    }

    #[test]
    fn poisson_jobs_are_deterministic_ordered_and_heavy_traffic() {
        let a = poisson_jobs(64, 100.0, 1, 0xF1EE7);
        assert_eq!(a, poisson_jobs(64, 100.0, 1, 0xF1EE7));
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|j| j.arrival.is_finite() && j.arrival >= 0.0));
        // The empirical mean gap lands near the configured mean.
        let mean_gap = a.last().unwrap().arrival / a.len() as f64;
        assert!(
            (20.0..500.0).contains(&mean_gap),
            "mean gap {mean_gap} implausible for 100 ns"
        );
    }

    #[test]
    fn fleet_shootout_paths_agree_on_a_tiny_config() {
        use qucp_runtime::{ExecutionMode, QueueIndexing};
        let (indexed, indexed_report) =
            fleet_shootout(3, 12, QueueIndexing::Indexed, ExecutionMode::Concurrent);
        let (_, linear_report) =
            fleet_shootout(3, 12, QueueIndexing::Linear, ExecutionMode::Concurrent);
        assert_eq!(indexed_report, linear_report);
        assert_eq!(indexed_report.job_results.len(), 12);
        assert_eq!(indexed.jobs, 12);
        assert!(indexed.dispatch_ns >= 1);
        // p99 is read off the sorted turnarounds, so it can never fall
        // below the median of the simulated schedule.
        let mut sorted: Vec<f64> = indexed_report
            .job_results
            .iter()
            .map(|r| r.turnaround)
            .collect();
        sorted.sort_by(f64::total_cmp);
        assert!(indexed.p99_turnaround_ns >= sorted[sorted.len() / 2]);
    }

    #[test]
    fn fig3b_is_deterministic_benchmarks() {
        use qucp_circuit::library::ResultKind;
        for combo in &FIG3B_COMBOS {
            for name in combo {
                let b = library::by_name(name).unwrap();
                assert_eq!(b.result, ResultKind::Deterministic, "{name}");
            }
        }
    }
}
