//! # qucp-bench
//!
//! Shared fixtures for the experiment-regeneration binaries and the
//! Criterion benchmarks: the exact benchmark combinations of the
//! paper's figures and the standard experiment configurations.
//!
//! Regenerate any paper artifact with, e.g.:
//!
//! ```text
//! cargo run --release -p qucp-bench --bin table1
//! cargo run --release -p qucp-bench --bin fig3
//! ```

#![warn(missing_docs)]

use qucp_circuit::{library, Circuit};

/// The Fig. 3a workloads (JSD benchmarks, three simultaneous circuits):
/// four same-benchmark triples and four mixed triples, in figure order.
pub const FIG3A_COMBOS: [[&str; 3]; 8] = [
    ["lin", "lin", "lin"],
    ["qec", "qec", "qec"],
    ["var", "var", "var"],
    ["bell", "bell", "bell"],
    ["qec", "var", "bell"],
    ["qec", "bell", "lin"],
    ["var", "bell", "lin"],
    ["qec", "var", "lin"],
];

/// The Fig. 3b workloads (PST benchmarks).
pub const FIG3B_COMBOS: [[&str; 3]; 8] = [
    ["adder", "adder", "adder"],
    ["4mod", "4mod", "4mod"],
    ["fred", "fred", "fred"],
    ["alu", "alu", "alu"],
    ["adder", "fred", "alu"],
    ["adder", "4mod", "alu"],
    ["adder", "fred", "4mod"],
    ["4mod", "fred", "alu"],
];

/// A display label for a combination (`qec-var-bell` or `lin ×3`).
pub fn combo_label(combo: &[&str; 3]) -> String {
    if combo[0] == combo[1] && combo[1] == combo[2] {
        format!("{} x3", combo[0])
    } else {
        combo.join("-")
    }
}

/// Materializes a combination into circuits (instances get unique
/// names so reports stay readable).
///
/// # Panics
///
/// Panics if a name is not in the benchmark library.
pub fn combo_circuits(combo: &[&str; 3]) -> Vec<Circuit> {
    combo
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut c = library::by_name(name)
                .unwrap_or_else(|| panic!("unknown benchmark `{name}`"))
                .circuit();
            c.set_name(format!("{name}#{i}"));
            c
        })
        .collect()
}

/// The shot count used by the paper's jobs.
pub const PAPER_SHOTS: usize = 8192;

/// The workspace-wide experiment seed.
pub const EXPERIMENT_SEED: u64 = 20220314;

/// The trajectory-engine benchmark job: an 8-qubit GHZ chain planned
/// solo on IBM Q Toronto by the QuCP pipeline. Shared between the
/// Criterion `trajectory` bench and the `trajectory` bin so both
/// measure exactly the same mapped job.
///
/// # Panics
///
/// Panics if the GHZ chain cannot be planned on Toronto (which would
/// be a pipeline regression).
pub fn trajectory_job() -> (qucp_device::Device, qucp_core::pipeline::PlannedWorkload) {
    use qucp_core::pipeline::Pipeline;
    use qucp_core::strategy;
    let device = qucp_device::ibm::toronto();
    let ghz = library::ghz(8);
    let plan = Pipeline::from_strategy(&strategy::qucp(4.0))
        .plan(&device, &[ghz], true)
        .expect("GHZ-8 must plan on Toronto");
    (device, plan)
}

/// Runs program 0 of a [`trajectory_job`] plan under `parallelism`
/// with [`PAPER_SHOTS`] shots.
///
/// # Panics
///
/// Panics if the mapped job is rejected by the simulator.
pub fn run_trajectory_job(
    device: &qucp_device::Device,
    plan: &qucp_core::pipeline::PlannedWorkload,
    parallelism: qucp_sim::ShotParallelism,
) -> qucp_sim::Counts {
    let exec = qucp_sim::ExecutionConfig::default()
        .with_shots(PAPER_SHOTS)
        .with_seed(EXPERIMENT_SEED)
        .with_parallelism(parallelism);
    let mapped = &plan.mapped[0];
    qucp_sim::run_noisy_with_idle(
        &mapped.circuit,
        &mapped.layout,
        device,
        &plan.context.scalings[0],
        &plan.context.tail_idle[0],
        &exec,
    )
    .expect("mapped GHZ job must simulate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combos_reference_known_benchmarks() {
        for combo in FIG3A_COMBOS.iter().chain(FIG3B_COMBOS.iter()) {
            let circuits = combo_circuits(combo);
            assert_eq!(circuits.len(), 3);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(combo_label(&["lin", "lin", "lin"]), "lin x3");
        assert_eq!(combo_label(&["qec", "var", "bell"]), "qec-var-bell");
    }

    #[test]
    fn fig3a_is_distribution_benchmarks() {
        use qucp_circuit::library::ResultKind;
        for combo in &FIG3A_COMBOS {
            for name in combo {
                let b = library::by_name(name).unwrap();
                assert_eq!(b.result, ResultKind::Distribution, "{name}");
            }
        }
    }

    #[test]
    fn fig3b_is_deterministic_benchmarks() {
        use qucp_circuit::library::ResultKind;
        for combo in &FIG3B_COMBOS {
            for name in combo {
                let b = library::by_name(name).unwrap();
                assert_eq!(b.result, ResultKind::Deterministic, "{name}");
            }
        }
    }
}
