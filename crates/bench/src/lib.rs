//! # qucp-bench
//!
//! Shared fixtures for the experiment-regeneration binaries and the
//! Criterion benchmarks: the exact benchmark combinations of the
//! paper's figures and the standard experiment configurations.
//!
//! Regenerate any paper artifact with, e.g.:
//!
//! ```text
//! cargo run --release -p qucp-bench --bin table1
//! cargo run --release -p qucp-bench --bin fig3
//! ```

#![warn(missing_docs)]

use qucp_circuit::{library, Circuit};

/// The Fig. 3a workloads (JSD benchmarks, three simultaneous circuits):
/// four same-benchmark triples and four mixed triples, in figure order.
pub const FIG3A_COMBOS: [[&str; 3]; 8] = [
    ["lin", "lin", "lin"],
    ["qec", "qec", "qec"],
    ["var", "var", "var"],
    ["bell", "bell", "bell"],
    ["qec", "var", "bell"],
    ["qec", "bell", "lin"],
    ["var", "bell", "lin"],
    ["qec", "var", "lin"],
];

/// The Fig. 3b workloads (PST benchmarks).
pub const FIG3B_COMBOS: [[&str; 3]; 8] = [
    ["adder", "adder", "adder"],
    ["4mod", "4mod", "4mod"],
    ["fred", "fred", "fred"],
    ["alu", "alu", "alu"],
    ["adder", "fred", "alu"],
    ["adder", "4mod", "alu"],
    ["adder", "fred", "4mod"],
    ["4mod", "fred", "alu"],
];

/// A display label for a combination (`qec-var-bell` or `lin ×3`).
pub fn combo_label(combo: &[&str; 3]) -> String {
    if combo[0] == combo[1] && combo[1] == combo[2] {
        format!("{} x3", combo[0])
    } else {
        combo.join("-")
    }
}

/// Materializes a combination into circuits (instances get unique
/// names so reports stay readable).
///
/// # Panics
///
/// Panics if a name is not in the benchmark library.
pub fn combo_circuits(combo: &[&str; 3]) -> Vec<Circuit> {
    combo
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut c = library::by_name(name)
                .unwrap_or_else(|| panic!("unknown benchmark `{name}`"))
                .circuit();
            c.set_name(format!("{name}#{i}"));
            c
        })
        .collect()
}

/// The shot count used by the paper's jobs.
pub const PAPER_SHOTS: usize = 8192;

/// The workspace-wide experiment seed.
pub const EXPERIMENT_SEED: u64 = 20220314;

/// The trajectory-engine benchmark job: an 8-qubit GHZ chain planned
/// solo on IBM Q Toronto by the QuCP pipeline. Shared between the
/// Criterion `trajectory` bench and the `trajectory` bin so both
/// measure exactly the same mapped job.
///
/// # Panics
///
/// Panics if the GHZ chain cannot be planned on Toronto (which would
/// be a pipeline regression).
pub fn trajectory_job() -> (qucp_device::Device, qucp_core::pipeline::PlannedWorkload) {
    use qucp_core::pipeline::Pipeline;
    use qucp_core::strategy;
    let device = qucp_device::ibm::toronto();
    let ghz = library::ghz(8);
    let plan = Pipeline::from_strategy(&strategy::qucp(4.0))
        .plan(&device, &[ghz], true)
        .expect("GHZ-8 must plan on Toronto");
    (device, plan)
}

/// Runs program 0 of a [`trajectory_job`] plan under `parallelism`
/// with [`PAPER_SHOTS`] shots on the default
/// [`Replay`](qucp_sim::TrajectoryKernel::Replay) kernel.
///
/// # Panics
///
/// Panics if the mapped job is rejected by the simulator.
pub fn run_trajectory_job(
    device: &qucp_device::Device,
    plan: &qucp_core::pipeline::PlannedWorkload,
    parallelism: qucp_sim::ShotParallelism,
) -> qucp_sim::Counts {
    run_trajectory_job_with_kernel(
        device,
        plan,
        parallelism,
        qucp_sim::TrajectoryKernel::Replay,
    )
}

/// [`run_trajectory_job`] with an explicit trajectory kernel — the
/// benchmark's kernel dimension.
///
/// # Panics
///
/// Panics if the mapped job is rejected by the simulator.
pub fn run_trajectory_job_with_kernel(
    device: &qucp_device::Device,
    plan: &qucp_core::pipeline::PlannedWorkload,
    parallelism: qucp_sim::ShotParallelism,
    kernel: qucp_sim::TrajectoryKernel,
) -> qucp_sim::Counts {
    let exec = qucp_sim::ExecutionConfig::default()
        .with_shots(PAPER_SHOTS)
        .with_seed(EXPERIMENT_SEED)
        .with_parallelism(parallelism)
        .with_kernel(kernel);
    let mapped = &plan.mapped[0];
    qucp_sim::run_noisy_with_idle(
        &mapped.circuit,
        &mapped.layout,
        device,
        &plan.context.scalings[0],
        &plan.context.tail_idle[0],
        &exec,
    )
    .expect("mapped GHZ job must simulate")
}

/// The clean-shot probability of the [`trajectory_job`] workload — the
/// fraction of trajectories the `SurvivalSkip` kernel answers from the
/// cached ideal state (see [`qucp_sim::clean_shot_probability`]).
///
/// # Panics
///
/// Panics if the mapped job is rejected by the simulator.
pub fn trajectory_clean_shot_fraction(
    device: &qucp_device::Device,
    plan: &qucp_core::pipeline::PlannedWorkload,
) -> f64 {
    let mapped = &plan.mapped[0];
    qucp_sim::clean_shot_probability(
        &mapped.circuit,
        &mapped.layout,
        device,
        &plan.context.scalings[0],
        &plan.context.tail_idle[0],
        &qucp_sim::ExecutionConfig::default(),
    )
    .expect("mapped GHZ job must simulate")
}

/// Calibration seed of the [`noisy_toronto_twin`].
pub const NOISY_TWIN_SEED: u64 = 2700;

/// A chip with IBM Q Toronto's topology but a calibration degraded
/// roughly 3× across the board (CNOT error, readout error, and a hotter
/// crosstalk landscape) — the "bad day" twin of [`qucp_device::ibm::toronto`].
/// Together they form the skewed fleet of [`skewed_fleet`], the fixture
/// on which calibration-aware routing must beat earliest-free on
/// delivered fidelity.
pub fn noisy_toronto_twin() -> qucp_device::Device {
    use qucp_device::{Calibration, CrosstalkModel, CrosstalkProfile, NoiseProfile};
    let topo = qucp_device::ibm::toronto_topology();
    let base = NoiseProfile::default();
    let profile = NoiseProfile {
        cx_error: (base.cx_error.0 * 3.0, base.cx_error.1 * 3.0),
        readout_error: (base.readout_error.0 * 3.0, base.readout_error.1 * 3.0),
        sq_error: (base.sq_error.0 * 3.0, base.sq_error.1 * 3.0),
        ..base
    };
    let cal = Calibration::synthesize(&topo, NOISY_TWIN_SEED, &profile);
    let xtalk = CrosstalkModel::synthesize(
        &topo,
        NOISY_TWIN_SEED + qucp_device::ibm::CROSSTALK_SEED_OFFSET,
        &CrosstalkProfile {
            strong_fraction: 0.4,
            ..CrosstalkProfile::default()
        },
    );
    qucp_device::Device::new("ibmq_toronto_noisy", topo, cal, xtalk)
}

/// The two-chip skewed fleet of the routing shoot-out: the **noisy**
/// twin registered first (so the earliest-free tie-break favours it —
/// calibration-aware routing has to *overcome* registration order, not
/// ride it), the well-calibrated Toronto second.
pub fn skewed_fleet() -> qucp_runtime::DeviceRegistry {
    let mut fleet = qucp_runtime::DeviceRegistry::new();
    fleet.register(noisy_toronto_twin());
    fleet.register(qucp_device::ibm::toronto());
    fleet
}

/// Outcome of one routing shoot-out run on the skewed fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct ShootoutOutcome {
    /// Routing policy display name.
    pub policy: String,
    /// Mean EFS score over all delivered jobs (lower is better — the
    /// deterministic, execution-free fidelity estimate).
    pub mean_efs: f64,
    /// Mean JSD of the delivered counts against the ideal distribution
    /// (lower is better).
    pub mean_jsd: f64,
    /// Mean turnaround (ns).
    pub mean_turnaround: f64,
    /// Jobs served per device, in registration order
    /// `(device name, jobs)`.
    pub per_device_jobs: Vec<(String, usize)>,
    /// Planning-cache statistics after the drain.
    pub cache: qucp_runtime::RouteCacheStats,
}

/// Runs the routing shoot-out burst (18 small library jobs, 1024 shots)
/// on the [`skewed_fleet`] under `routing` and `mode`, and reduces the
/// drained report to the delivered-fidelity metrics. Deterministic:
/// serial and concurrent execution produce identical outcomes.
///
/// # Panics
///
/// Panics if the service rejects the fixture workload (a runtime
/// regression).
pub fn routing_shootout(
    routing: impl qucp_runtime::RoutingPolicy + 'static,
    mode: qucp_runtime::ExecutionMode,
) -> ShootoutOutcome {
    use qucp_runtime::{JobRequest, Service};
    let mut service = Service::builder()
        .registry(skewed_fleet())
        .strategy(qucp_core::strategy::qucp(4.0))
        .routing(routing)
        .max_parallel(3)
        .mode(mode)
        .seed(EXPERIMENT_SEED)
        .build()
        .expect("shoot-out service must build");
    for job in qucp_runtime::synthetic_jobs(18, 400.0, 1024, 0xF1EE7) {
        service
            .submit(JobRequest::from_job(&job))
            .expect("fixture job must submit");
    }
    let report = service
        .run_until_drained()
        .expect("shoot-out burst must drain");
    let n = report.job_results.len() as f64;
    ShootoutOutcome {
        policy: service.routing_name().to_string(),
        mean_efs: report.job_results.iter().map(|r| r.result.efs).sum::<f64>() / n,
        mean_jsd: report.job_results.iter().map(|r| r.result.jsd).sum::<f64>() / n,
        mean_turnaround: report.stats.mean_turnaround,
        per_device_jobs: report
            .per_device
            .iter()
            .map(|d| (d.device.clone(), d.jobs))
            .collect(),
        cache: service.route_cache_stats(),
    }
}

/// Simulated nanoseconds per drift step of the drift shoot-out.
pub const DRIFT_INTERVAL_NS: f64 = 50_000.0;

/// Drift steps the shoot-out advances between its two bursts.
pub const DRIFT_STEPS: u64 = 3;

/// Per-step seesaw rate: after [`DRIFT_STEPS`] steps the degrading chip
/// is `rate^steps ≈ 3.4×` worse and the improving chip `3.4×` better —
/// enough to decisively flip the skewed fleet's quality ordering.
pub const SEESAW_RATE: f64 = 1.5;

/// A deterministic cross-fade [`DriftModel`](qucp_device::DriftModel)
/// for the drift shoot-out: the device with salt 0 (the noisy twin,
/// registered first in [`skewed_fleet`]) *improves* by `1/rate` per
/// step while every other device *degrades* by `rate` — no RNG at all,
/// so the fleet's quality ordering flips at an exactly predictable
/// step. Crosstalk excesses (γ − 1) fade with the same factors.
///
/// This is deliberately not a realistic noise process (that is
/// [`GaussianWalk`](qucp_device::GaussianWalk)'s job); it is the
/// controlled experiment that isolates what stale routing data costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeesawDrift {
    /// Per-step multiplicative rate (> 1).
    pub rate: f64,
    /// Simulated nanoseconds per step.
    pub interval_ns: f64,
}

impl qucp_device::DriftModel for SeesawDrift {
    fn steps_at(&self, now: f64) -> u64 {
        qucp_device::interval_steps(now, self.interval_ns)
    }

    fn apply_step(
        &self,
        _step: u64,
        device_salt: u64,
        calibration: &mut qucp_device::Calibration,
        crosstalk: &mut qucp_device::CrosstalkModel,
    ) -> bool {
        let factor = if device_salt == 0 {
            1.0 / self.rate
        } else {
            self.rate
        };
        let mut changed = false;
        let mut scale = |v: &mut f64| {
            let next = (*v * factor).clamp(1e-6, 0.45);
            if next != *v {
                *v = next;
                changed = true;
            }
        };
        for (_, e) in calibration.cx_errors_mut() {
            scale(e);
        }
        for e in calibration.sq_errors_mut() {
            scale(e);
        }
        for e in calibration.readout_errors_mut() {
            scale(e);
        }
        for (_, g) in crosstalk.gammas_mut() {
            let next = (1.0 + (*g - 1.0) * factor).clamp(1.0, 64.0);
            if next != *g {
                *g = next;
                changed = true;
            }
        }
        changed
    }
}

/// Outcome of one drift shoot-out run (see [`drift_shootout`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftOutcome {
    /// The cache mode the run used.
    pub invalidation: qucp_runtime::CacheInvalidation,
    /// Mean EFS of the pre-drift burst (must agree between modes — the
    /// fleets are identical until the drift).
    pub mean_efs_before: f64,
    /// Mean JSD of the pre-drift burst.
    pub mean_jsd_before: f64,
    /// Mean EFS of the post-drift burst — the discriminating metric.
    pub mean_efs_after: f64,
    /// Mean JSD of the post-drift burst.
    pub mean_jsd_after: f64,
    /// Fleet-wide mean turnaround over both bursts (ns).
    pub mean_turnaround: f64,
    /// Calibration-epoch bumps the drift advance performed.
    pub epoch_bumps: usize,
    /// Post-drift jobs served per device, in registration order.
    pub fresh_jobs_per_device: Vec<(String, usize)>,
    /// Planning-cache statistics after both drains.
    pub cache: qucp_runtime::RouteCacheStats,
}

/// Runs the calibration-drift shoot-out on the [`skewed_fleet`] under
/// `invalidation` and `mode`: a 9-job burst on the original
/// calibrations, then [`DRIFT_STEPS`] [`SeesawDrift`] steps that flip
/// which chip is good (the noisy twin anneals, the good Toronto
/// degrades ~3.4×), then a second 9-job burst. `CalibrationAware`
/// routing probes through the cross-batch cache both times — under
/// [`CacheInvalidation::EpochAware`](qucp_runtime::CacheInvalidation)
/// the epoch bumps drop the stale probes and the second burst re-routes
/// to the *currently* good chip; under `Never` the second burst keeps
/// chasing the pre-drift ranking. Deterministic: serial and concurrent
/// execution produce identical outcomes.
///
/// # Panics
///
/// Panics if the service rejects the fixture workload (a runtime
/// regression).
pub fn drift_shootout(
    invalidation: qucp_runtime::CacheInvalidation,
    mode: qucp_runtime::ExecutionMode,
) -> DriftOutcome {
    use qucp_runtime::{CalibrationAware, JobRequest, Service};
    let mut service = Service::builder()
        .registry(skewed_fleet())
        .strategy(qucp_core::strategy::qucp(4.0))
        .routing(CalibrationAware::default())
        .drift(SeesawDrift {
            rate: SEESAW_RATE,
            interval_ns: DRIFT_INTERVAL_NS,
        })
        .cache_invalidation(invalidation)
        .max_parallel(3)
        .mode(mode)
        .seed(EXPERIMENT_SEED)
        .build()
        .expect("drift shoot-out service must build");
    let burst = qucp_runtime::synthetic_jobs(9, 400.0, 1024, 0xF1EE7);
    for job in &burst {
        service
            .submit(JobRequest::from_job(job))
            .expect("fixture job must submit");
    }
    service
        .run_until_drained()
        .expect("pre-drift burst must drain");

    // The calibrations cross-fade; with epoch-aware caching every bump
    // also drops the bumped chip's cached probes.
    let epoch_bumps = service
        .advance_drift(DRIFT_STEPS as f64 * DRIFT_INTERVAL_NS)
        .expect("drift advance must succeed");

    // Same workload again, long after the first burst drained; ids are
    // offset so the two bursts stay distinguishable in the report.
    const FRESH_ID_OFFSET: u64 = 100;
    const FRESH_ARRIVAL_OFFSET: f64 = 1e7;
    for job in &burst {
        service
            .submit(
                JobRequest::new(job.circuit.clone(), job.arrival + FRESH_ARRIVAL_OFFSET)
                    .with_id(job.id + FRESH_ID_OFFSET)
                    .with_shots(job.shots),
            )
            .expect("fixture job must submit");
    }
    let report = service
        .run_until_drained()
        .expect("post-drift burst must drain");

    let n = burst.len();
    let mean = |f: &dyn Fn(&qucp_runtime::JobResult) -> f64, range: std::ops::Range<usize>| {
        report.job_results[range.clone()].iter().map(f).sum::<f64>() / range.len() as f64
    };
    let mut fresh_jobs_per_device: Vec<(String, usize)> = report
        .per_device
        .iter()
        .map(|d| (d.device.clone(), 0))
        .collect();
    for batch in &report.batches {
        if batch.job_ids.iter().any(|&id| id >= FRESH_ID_OFFSET) {
            if let Some(slot) = fresh_jobs_per_device
                .iter_mut()
                .find(|(name, _)| *name == batch.device)
            {
                slot.1 += batch.job_ids.len();
            }
        }
    }
    DriftOutcome {
        invalidation,
        mean_efs_before: mean(&|r| r.result.efs, 0..n),
        mean_jsd_before: mean(&|r| r.result.jsd, 0..n),
        mean_efs_after: mean(&|r| r.result.efs, n..2 * n),
        mean_jsd_after: mean(&|r| r.result.jsd, n..2 * n),
        mean_turnaround: report.stats.mean_turnaround,
        epoch_bumps,
        fresh_jobs_per_device,
        cache: service.route_cache_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_fleet_is_actually_skewed() {
        let good = qucp_device::ibm::toronto();
        let noisy = noisy_toronto_twin();
        assert_eq!(good.topology(), noisy.topology());
        assert!(
            noisy.calibration().mean_cx_error() > 2.0 * good.calibration().mean_cx_error(),
            "noisy twin must be clearly worse"
        );
        assert!(
            noisy.calibration().mean_readout_error()
                > 2.0 * good.calibration().mean_readout_error()
        );
        let fleet = skewed_fleet();
        assert_eq!(fleet.len(), 2);
        // Noisy first: the earliest-free tie-break must favour it.
        assert_eq!(fleet.iter().next().unwrap().1.name(), "ibmq_toronto_noisy");
    }

    #[test]
    fn combos_reference_known_benchmarks() {
        for combo in FIG3A_COMBOS.iter().chain(FIG3B_COMBOS.iter()) {
            let circuits = combo_circuits(combo);
            assert_eq!(circuits.len(), 3);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(combo_label(&["lin", "lin", "lin"]), "lin x3");
        assert_eq!(combo_label(&["qec", "var", "bell"]), "qec-var-bell");
    }

    #[test]
    fn fig3a_is_distribution_benchmarks() {
        use qucp_circuit::library::ResultKind;
        for combo in &FIG3A_COMBOS {
            for name in combo {
                let b = library::by_name(name).unwrap();
                assert_eq!(b.result, ResultKind::Distribution, "{name}");
            }
        }
    }

    #[test]
    fn fig3b_is_deterministic_benchmarks() {
        use qucp_circuit::library::ResultKind;
        for combo in &FIG3B_COMBOS {
            for name in combo {
                let b = library::by_name(name).unwrap();
                assert_eq!(b.result, ResultKind::Deterministic, "{name}");
            }
        }
    }
}
