//! Simultaneous RB riding the runtime [`Service`](qucp_runtime::Service):
//! a streaming [`CampaignDriver`] that co-schedules the RB sequences of
//! a whole link group, one round per sequence length.
//!
//! The paper's SRB protocol drives every link of a conflict-free group
//! *at the same time* to expose crosstalk. This driver expresses that
//! through multiprogramming: each round submits, for every
//! characterized link and every random seed, one RB sequence of the
//! round's length — the admission policy packs them onto shared
//! hardware exactly as the paper batches simultaneous sequences.
//! Sequences are the ones [`qucp_srb::rb_on_link`] would generate
//! (same per-`(length, seed, link)` derivation from the base seed), so
//! the two paths characterize the same circuits.
//!
//! This driver lives in `qucp-bench` rather than `qucp-srb` because
//! the dependency arrow points the other way: `qucp-core`'s strategy
//! layer consumes SRB characterizations, so `qucp-srb` sits *below*
//! the runtime and cannot depend on it.
//!
//! Unlike the direct runner, the service pipeline applies its own noise
//! model to the *whole* circuit — there is no noise-free recovery block
//! and no per-gate γ scaling here. The recovery's noise is absorbed
//! into the SPAM constants of the decay fit, as in standard RB
//! analysis; crosstalk enters through the service's device model when
//! sequences actually share a chip.

use qucp_device::Link;
use qucp_runtime::{CampaignDriver, JobRequest, JobResult, RoutingChoice};
use qucp_srb::{fit_decay, rb_circuit, DecayFit, RbConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A streaming simultaneous-RB campaign over a set of links: one round
/// per sequence length, `links × seeds` co-scheduled jobs per round,
/// per-link survival curves fitted when the campaign finishes.
#[derive(Debug, Clone)]
pub struct SrbServiceCampaign {
    links: Vec<Link>,
    cfg: RbConfig,
    routing: Option<RoutingChoice>,
    survival: Vec<Vec<(usize, f64)>>,
}

/// What a drained [`SrbServiceCampaign`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SrbServiceOutput {
    /// The characterized links, in construction order.
    pub links: Vec<Link>,
    /// Per-link `(length, mean survival)` curves, index-aligned with
    /// `links`.
    pub survival: Vec<Vec<(usize, f64)>>,
    /// Per-link decay fits, index-aligned with `links`.
    pub fits: Vec<DecayFit>,
}

impl SrbServiceOutput {
    /// Error per Clifford of link `i` from its fitted decay.
    pub fn error_per_clifford(&self, i: usize) -> f64 {
        self.fits[i].error_per_clifford()
    }
}

impl SrbServiceCampaign {
    /// A campaign characterizing `links` simultaneously under `cfg`
    /// (lengths, seeds per length, shots, base seed — shared with the
    /// direct [`qucp_srb::rb_on_link`] runner).
    pub fn new(links: Vec<Link>, cfg: RbConfig) -> Self {
        let survival = vec![Vec::with_capacity(cfg.lengths.len()); links.len()];
        SrbServiceCampaign {
            links,
            cfg,
            routing: None,
            survival,
        }
    }

    /// Attaches a per-job routing override to every request.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingChoice) -> Self {
        self.routing = Some(routing);
        self
    }

    /// Jobs per round: one sequence per link per seed.
    pub fn jobs_per_round(&self) -> usize {
        self.links.len() * self.cfg.seeds
    }

    /// The sequence seed of `(length index, seed index, link)` — the
    /// same derivation [`qucp_srb::rb_on_link`] uses, so both paths
    /// draw identical Clifford sequences.
    fn seq_seed(&self, li: usize, s: usize, link: Link) -> u64 {
        self.cfg
            .base_seed
            .wrapping_add(li as u64 * 1_000_003)
            .wrapping_add(s as u64 * 7919)
            .wrapping_add(link.low() as u64 * 31)
            .wrapping_add(link.high() as u64)
    }
}

impl CampaignDriver for SrbServiceCampaign {
    type Output = SrbServiceOutput;

    fn next_batch(&mut self, round: usize) -> Option<Vec<JobRequest>> {
        let &m = self.cfg.lengths.get(round)?;
        let mut requests = Vec::with_capacity(self.jobs_per_round());
        for &link in &self.links {
            for s in 0..self.cfg.seeds {
                let mut rng = StdRng::seed_from_u64(self.seq_seed(round, s, link));
                let (mut circuit, _recovery_start) = rb_circuit(m, &mut rng);
                circuit.set_name(format!("srb_l{}_{}_m{m}_s{s}", link.low(), link.high()));
                let mut request = JobRequest::new(circuit, 0.0).with_shots(self.cfg.shots);
                if let Some(routing) = self.routing {
                    request = request.with_routing(routing);
                }
                requests.push(request);
            }
        }
        Some(requests)
    }

    fn fold(&mut self, round: usize, results: &[JobResult]) {
        let m = self.cfg.lengths[round];
        for (i, chunk) in results.chunks(self.cfg.seeds).enumerate() {
            let total: f64 = chunk.iter().map(|r| r.result.counts.probability(0)).sum();
            self.survival[i].push((m, total / self.cfg.seeds as f64));
        }
    }

    fn finish(self) -> SrbServiceOutput {
        let fits = self.survival.iter().map(|curve| fit_decay(curve)).collect();
        SrbServiceOutput {
            links: self.links,
            survival: self.survival,
            fits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qucp_device::{Calibration, CrosstalkModel, Device, Topology};
    use qucp_runtime::{ExecutionMode, Service};

    fn service(mode: ExecutionMode) -> Service {
        let t = Topology::line(4);
        let cal = Calibration::uniform(&t, 0.04, 1e-4, 0.02);
        let dev = Device::new("srbdev", t, cal, CrosstalkModel::none());
        Service::builder()
            .device(dev)
            .default_shots(256)
            .seed(5)
            .mode(mode)
            // RB sequences contain Clifford–inverse structure the
            // peephole would cancel; keep them intact.
            .optimize(false)
            .build()
            .unwrap()
    }

    fn quick_cfg() -> RbConfig {
        RbConfig {
            lengths: vec![1, 4, 8, 16],
            seeds: 2,
            shots: 256,
            base_seed: 5,
        }
    }

    #[test]
    fn simultaneous_rb_decays_and_is_mode_invariant() {
        let links = vec![Link::new(0, 1), Link::new(2, 3)];
        let run = |mode| {
            let mut svc = service(mode);
            let campaign = SrbServiceCampaign::new(links.clone(), quick_cfg());
            qucp_runtime::run_campaign(&mut svc, campaign).unwrap()
        };
        let serial = run(ExecutionMode::Serial);
        let concurrent = run(ExecutionMode::Concurrent);
        assert_eq!(serial, concurrent, "campaign must be mode-invariant");
        assert_eq!(serial.stats.rounds, 4);
        assert_eq!(serial.stats.jobs, 4 * 2 * 2);
        for (i, curve) in serial.output.survival.iter().enumerate() {
            assert_eq!(curve.len(), 4);
            let first = curve.first().unwrap().1;
            let last = curve.last().unwrap().1;
            assert!(
                first > last,
                "link {i}: expected decay, got first {first} last {last}"
            );
            assert!(serial.output.error_per_clifford(i) > 0.0);
        }
    }
}
