//! Regenerates **Fig. 6** of the paper: absolute error of the eight
//! benchmarks without mitigation (Baseline), with ZNE run through QuCP
//! parallel execution (QuCP+ZNE), and with independent ZNE.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin fig6
//! ```

use qucp_bench::{EXPERIMENT_SEED, PAPER_SHOTS};
use qucp_circuit::library;
use qucp_core::report::{fix, Table};
use qucp_core::strategy;
use qucp_device::ibm;
use qucp_zne::{run_zne_comparison, ZneExperiment};

fn main() {
    let device = ibm::manhattan();
    println!(
        "Fig. 6: absolute error of <Z...Z> without and with ZNE on {} (4 folded",
        device.name()
    );
    println!("circuits, scale factors 1.0/1.5/2.0/2.5; best of Linear/Poly/Richardson)\n");

    let order = ["adder", "4mod", "fred", "alu", "lin", "qec", "var", "bell"];
    let mut t = Table::new(&["benchmark", "Baseline", "QuCP+ZNE", "ZNE", "winner factory"]);
    let mut base_sum = 0.0;
    let mut par_sum = 0.0;
    let mut ind_sum = 0.0;
    let mut best_gain: (f64, &str) = (0.0, "");
    for name in order {
        let circuit = library::by_name(name).unwrap().circuit();
        let exp = ZneExperiment {
            shots: PAPER_SHOTS,
            seed: EXPERIMENT_SEED ^ (name.len() as u64) << 8,
            strategy: strategy::qucp(4.0),
            ..ZneExperiment::default()
        };
        let out = run_zne_comparison(&device, &circuit, &exp).expect("zne comparison");
        base_sum += out.baseline_error;
        par_sum += out.parallel_error;
        ind_sum += out.independent_error;
        let gain = if out.parallel_error > 1e-12 {
            out.baseline_error / out.parallel_error
        } else {
            f64::INFINITY
        };
        if gain > best_gain.0 {
            best_gain = (gain, name);
        }
        t.row_owned(vec![
            name.to_string(),
            fix(out.baseline_error, 3),
            fix(out.parallel_error, 3),
            fix(out.independent_error, 3),
            out.parallel_factory.to_string(),
        ]);
    }
    print!("{t}");
    let n = order.len() as f64;
    println!(
        "\nMean error: Baseline {:.3}, QuCP+ZNE {:.3}, ZNE {:.3}",
        base_sum / n,
        par_sum / n,
        ind_sum / n
    );
    println!(
        "QuCP+ZNE reduces error {:.1}x on average (paper: 2x); best case {} at {:.1}x (paper: 11x on alu).",
        base_sum / par_sum.max(1e-12),
        best_gain.1,
        best_gain.0
    );
    println!("Runtime/throughput gain of QuCP+ZNE over ZNE: 4 circuits per job instead of 4 jobs.");
}
