//! Ablation **A3** / motivation: the cloud-queue model of Sec. I/II-A —
//! waiting-time, turnaround, and throughput with and without
//! multi-programming, plus the Fig. 1 Melbourne throughput numbers.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin queue_model
//! ```

use qucp_core::queue::{simulate_queue, synthetic_workload, QueuedJob};
use qucp_core::report::{fix, pct, Table};

fn main() {
    println!("Fig. 1 motivation: one vs two 4-qubit circuits on IBM Q 16 Melbourne\n");
    let two_jobs: Vec<QueuedJob> = (0..2)
        .map(|_| QueuedJob {
            arrival: 0.0,
            qubits: 4,
            duration: 1.0,
        })
        .collect();
    let solo = simulate_queue(&two_jobs, 15, 1).expect("queue");
    let dual = simulate_queue(&two_jobs, 15, 2).expect("queue");
    let mut t = Table::new(&["mode", "throughput", "total runtime"]);
    t.row_owned(vec![
        "one circuit".into(),
        pct(solo.mean_throughput),
        fix(solo.makespan, 1),
    ]);
    t.row_owned(vec![
        "two in parallel".into(),
        pct(dual.mean_throughput),
        fix(dual.makespan, 1),
    ]);
    print!("{t}");
    println!("\n(paper: 26.7% -> 53.3% utilization, total runtime halved)\n");

    println!("Synthetic cloud queue: 200 small jobs on a 27-qubit chip\n");
    let jobs = synthetic_workload(200, 0xC10D);
    let mut t = Table::new(&[
        "max parallel",
        "mean waiting",
        "mean turnaround",
        "makespan",
        "throughput",
        "batches",
    ]);
    for k in [1usize, 2, 3, 4, 6] {
        let s = simulate_queue(&jobs, 27, k).expect("queue");
        t.row_owned(vec![
            k.to_string(),
            fix(s.mean_waiting, 1),
            fix(s.mean_turnaround, 1),
            fix(s.makespan, 1),
            pct(s.mean_throughput),
            s.batches.to_string(),
        ]);
    }
    print!("{t}");
    println!("\nMulti-programming cuts queue waiting roughly in proportion to the");
    println!("packing factor — the \"reduces the overall runtime\" claim of Sec. I.");
}
