//! Regenerates **Fig. 2** of the paper: SRB crosstalk characterization
//! of IBM Q 27 Toronto — the pairs significantly influenced by
//! crosstalk.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin fig2
//! ```

use qucp_core::report::{fix, Table};
use qucp_device::ibm;
use qucp_srb::{run_campaign, RbConfig, SIGNIFICANT_RATIO};

fn main() {
    let device = ibm::toronto();
    let cfg = RbConfig {
        lengths: vec![2, 8, 16, 32, 48],
        seeds: 3,
        shots: 512,
        base_seed: 0xF162,
    };
    println!(
        "Fig. 2: Crosstalk characterization of {} via SRB ({} one-hop pairs)",
        device.name(),
        device.topology().one_hop_link_pairs().len()
    );
    println!("Running the campaign on the noisy simulator...\n");
    let report = run_campaign(&device, &cfg, usize::MAX);

    let mut t = Table::new(&[
        "pair",
        "eps(gi)",
        "eps(gi|gj)",
        "ratio",
        "true gamma",
        "significant",
    ]);
    for p in &report.pairs {
        t.row_owned(vec![
            p.pair.to_string(),
            fix(p.isolated.0, 4),
            fix(p.simultaneous.0, 4),
            fix(p.worst_ratio(), 2),
            fix(p.true_gamma, 2),
            if p.is_significant() { "YES" } else { "" }.to_string(),
        ]);
    }
    print!("{t}");

    let sig = report.significant();
    println!(
        "\n{} of {} pairs exceed the {}x significance threshold (the arrows of Fig. 2).",
        sig.len(),
        report.pairs.len(),
        SIGNIFICANT_RATIO
    );
    // Accuracy of the SRB estimate against the injected ground truth.
    let mut err = 0.0;
    let mut n = 0;
    for p in &report.pairs {
        if p.true_gamma > 1.5 {
            err += (p.worst_ratio() - p.true_gamma).abs() / p.true_gamma;
            n += 1;
        }
    }
    if n > 0 {
        println!(
            "Mean relative error of SRB ratio vs ground-truth gamma (strong pairs): {:.1}%",
            100.0 * err / n as f64
        );
    }
    println!("\nOverhead actually paid: {}", report.overhead);
}
