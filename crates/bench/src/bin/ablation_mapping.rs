//! Ablation **A2**: initial-mapping quality — the noise-aware HA-style
//! placement against a trivial (identity) placement, measured by SWAP
//! count and resulting fidelity.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin ablation_mapping
//! ```

use qucp_bench::EXPERIMENT_SEED;
use qucp_circuit::library;
use qucp_core::report::{fix, Table};
use qucp_core::{allocate_partitions, initial_mapping, route, CrosstalkTreatment, PartitionPolicy};
use qucp_device::ibm;
use qucp_sim::{
    ideal_outcome, metrics, noiseless_probabilities, run_noisy, ExecutionConfig, NoiseScaling,
};

fn main() {
    let device = ibm::toronto();
    println!(
        "Ablation A2: noise-aware vs trivial initial mapping ({})\n",
        device.name()
    );
    let mut t = Table::new(&[
        "benchmark",
        "swaps (HA)",
        "swaps (trivial)",
        "fidelity (HA)",
        "fidelity (trivial)",
    ]);
    for b in library::all() {
        let circuit = b.circuit();
        let allocs = allocate_partitions(
            &device,
            &[&circuit],
            &PartitionPolicy::NoiseAware(CrosstalkTreatment::Sigma(4.0)),
        )
        .expect("allocation");
        let partition = &allocs[0].qubits;

        let ha_initial = initial_mapping(&device, partition, &circuit);
        let trivial: Vec<usize> = (0..circuit.width()).collect();
        let mapped_ha = route(&device, partition, &circuit, &ha_initial, |_| 0.0);
        let mapped_triv = route(&device, partition, &circuit, &trivial, |_| 0.0);

        let cfg = ExecutionConfig::default()
            .with_shots(4096)
            .with_seed(EXPERIMENT_SEED ^ b.name.len() as u64);
        let score = |mp: &qucp_core::MappedProgram| -> f64 {
            let counts = run_noisy(
                &mp.circuit,
                &mp.layout,
                &device,
                &NoiseScaling::uniform(mp.circuit.gate_count()),
                &cfg,
            )
            .expect("mapped job runs");
            let logical = mp.to_logical_counts(&counts);
            match ideal_outcome(&circuit) {
                Some(target) => logical.probability(target),
                None => {
                    1.0 - metrics::jsd(&logical.distribution(), &noiseless_probabilities(&circuit))
                }
            }
        };
        t.row_owned(vec![
            b.name.to_string(),
            mapped_ha.swap_count.to_string(),
            mapped_triv.swap_count.to_string(),
            fix(score(&mapped_ha), 3),
            fix(score(&mapped_triv), 3),
        ]);
    }
    print!("{t}");
    println!("\n(fidelity = PST for deterministic benchmarks, 1 - JSD otherwise)");
}
