//! Regenerates **Fig. 4** of the paper: average PST and hardware
//! throughput versus the fidelity threshold on IBM Q 65 Manhattan, for
//! `4mod5-v1_22` and `alu-v0_27` (one to six simultaneous copies).
//!
//! ```text
//! cargo run --release -p qucp-bench --bin fig4
//! ```

use qucp_bench::{EXPERIMENT_SEED, PAPER_SHOTS};
use qucp_circuit::library;
use qucp_core::report::{fix, pct, Table};
use qucp_core::{efs_difference, strategy, threshold_sweep, ParallelConfig};
use qucp_device::ibm;
use qucp_sim::ExecutionConfig;

fn main() {
    let device = ibm::manhattan();
    let strat = strategy::qucp(4.0);
    let cfg = ParallelConfig {
        execution: ExecutionConfig::default()
            .with_shots(PAPER_SHOTS)
            .with_seed(EXPERIMENT_SEED),
        optimize: true,
    };

    for name in ["4mod5-v1_22", "alu-v0_27"] {
        let circuit = library::by_name(name).unwrap().circuit();
        println!(
            "Fig. 4 ({name}) on {}: PST and throughput vs fidelity threshold\n",
            device.name()
        );
        // Derive thresholds that admit k = 1..6 copies: midpoints between
        // consecutive EFS differences.
        let mut diffs = vec![0.0f64];
        for k in 2..=6 {
            diffs.push(efs_difference(&device, &circuit, k, &strat).expect("efs difference"));
        }
        let mut thresholds = vec![0.0f64];
        for k in 1..6 {
            let lo = diffs[k];
            let hi = if k + 1 < diffs.len() {
                diffs[k + 1]
            } else {
                lo + 1.0
            };
            thresholds.push(lo.midpoint(hi.max(lo + 1e-6)));
        }
        // Average the measured PST over three execution seeds to smooth
        // single-run sampling noise (the admitted count and throughput
        // are deterministic).
        let mut runs = Vec::new();
        for s in 0..3u64 {
            let seeded = ParallelConfig {
                execution: cfg.execution.with_seed(cfg.execution.seed + 7919 * s),
                ..cfg
            };
            runs.push(
                threshold_sweep(&device, &circuit, &thresholds, 6, &strat, &seeded)
                    .expect("threshold sweep"),
            );
        }
        let points = &runs[0];

        let mut t = Table::new(&[
            "threshold",
            "simultaneous",
            "throughput",
            "avg PST",
            "EFS difference",
        ]);
        for (i, p) in points.iter().enumerate() {
            let pst = runs.iter().filter_map(|r| r[i].mean_pst).sum::<f64>() / runs.len() as f64;
            t.row_owned(vec![
                fix(p.threshold, 4),
                p.parallel_count.to_string(),
                pct(p.throughput),
                fix(pst, 3),
                fix(p.efs_difference, 4),
            ]);
        }
        print!("{t}");
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        println!(
            "\nThroughput {} -> {}; PST {:.3} -> {:.3}; runtime reduction up to {}x.\n",
            pct(first.throughput),
            pct(last.throughput),
            first.mean_pst.unwrap_or(f64::NAN),
            last.mean_pst.unwrap_or(f64::NAN),
            last.parallel_count
        );
    }
    println!("Paper shape: throughput 7.7% -> 46.2% as copies go 1 -> 6, with a");
    println!("pronounced fidelity drop once throughput exceeds ~38%.");
}
