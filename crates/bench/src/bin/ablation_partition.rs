//! Ablation **A1**: partition-policy quality across all five strategies
//! (QuCP, QuMC, MultiQC, QuCloud, CNA) on the Fig. 3 workloads —
//! separating how much of QuCP's advantage comes from noise-aware
//! partitioning versus crosstalk treatment.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin ablation_partition
//! ```

use qucp_bench::{combo_circuits, EXPERIMENT_SEED, FIG3A_COMBOS, FIG3B_COMBOS};
use qucp_core::report::{fix, Table};
use qucp_core::{execute_parallel, strategy, ParallelConfig, Strategy};
use qucp_device::ibm;
use qucp_sim::ExecutionConfig;

fn main() {
    let device = ibm::toronto();
    let cfg = ParallelConfig {
        execution: ExecutionConfig::default()
            .with_shots(2048)
            .with_seed(EXPERIMENT_SEED),
        optimize: true,
    };
    let strategies: Vec<Strategy> = vec![
        strategy::qucp(4.0),
        strategy::qumc_with_ground_truth(&device),
        strategy::multiqc(),
        strategy::qucloud(),
        strategy::cna(),
        strategy::cna_serialized(),
    ];

    println!(
        "Ablation A1: strategy comparison on all 16 Fig. 3 workloads ({})\n",
        device.name()
    );
    let mut t = Table::new(&[
        "strategy",
        "mean EFS",
        "mean PST",
        "mean JSD",
        "conflicts",
        "mean swaps",
    ]);
    for strat in &strategies {
        let mut efs = 0.0;
        let mut psts = Vec::new();
        let mut jsds = Vec::new();
        let mut conflicts = 0usize;
        let mut swaps = 0usize;
        let mut n_alloc = 0usize;
        for combo in FIG3A_COMBOS.iter().chain(FIG3B_COMBOS.iter()) {
            let programs = combo_circuits(combo);
            let out = execute_parallel(&device, &programs, strat, &cfg)
                .unwrap_or_else(|e| panic!("{} failed: {e}", strat.name));
            conflicts += out.conflict_count;
            for p in &out.programs {
                efs += p.efs;
                swaps += p.swap_count;
                n_alloc += 1;
                if let Some(pst) = p.pst {
                    psts.push(pst);
                }
                jsds.push(p.jsd);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        t.row_owned(vec![
            strat.name.clone(),
            fix(efs / n_alloc as f64, 4),
            fix(mean(&psts), 3),
            fix(mean(&jsds), 3),
            conflicts.to_string(),
            fix(swaps as f64 / n_alloc as f64, 2),
        ]);
    }
    print!("{t}");
    println!("\nReading: QuCP/QuMC should lead on PST/JSD; MultiQC (noise-aware, no");
    println!("crosstalk) sits between; CNA (topology partitions) trails; serializing");
    println!("CNA's conflicts trades crosstalk for idle decoherence.");
}
