//! Regenerates `BENCH_routing_shootout.json`: earliest-free vs
//! calibration-aware routing on the skewed two-chip fleet (a
//! well-calibrated IBM Q Toronto and its ~3×-noisier twin). Doubles as
//! the CI smoke check of the routing seam — it **asserts** the
//! calibration-aware policy's delivered-fidelity win (mean EFS and mean
//! JSD) at bounded turnaround cost, and that both policies route
//! deterministically (serial == concurrent execution, bit for bit).
//!
//! ```text
//! cargo run --release -p qucp-bench --bin routing_shootout
//! ```

use qucp_bench::{routing_shootout, ShootoutOutcome};
use qucp_runtime::{CalibrationAware, EarliestFree, ExecutionMode};

/// Turnaround slack the fidelity win may cost: the calibration-aware
/// policy concentrates load on the good chip, so it trades some queueing
/// for fidelity — but never more than this factor over earliest-free.
const MAX_TURNAROUND_RATIO: f64 = 3.0;

fn print_outcome(o: &ShootoutOutcome) {
    println!(
        "  {:<18} mean EFS {:.4}  mean JSD {:.4}  turnaround {:>10.0} ns  cache {}h/{}m",
        o.policy, o.mean_efs, o.mean_jsd, o.mean_turnaround, o.cache.hits, o.cache.misses
    );
    for (device, jobs) in &o.per_device_jobs {
        println!("    {device:<22} {jobs:>3} jobs");
    }
}

fn main() {
    println!("routing shoot-out: 18 jobs on [ibmq_toronto_noisy, ibmq_toronto]\n");

    // Determinism first: the routing decisions and the delivered results
    // must not depend on per-batch thread scheduling.
    let earliest = routing_shootout(EarliestFree, ExecutionMode::Concurrent);
    let aware = routing_shootout(CalibrationAware::default(), ExecutionMode::Concurrent);
    assert_eq!(
        earliest,
        routing_shootout(EarliestFree, ExecutionMode::Serial),
        "earliest-free routing must be serial == concurrent"
    );
    assert_eq!(
        aware,
        routing_shootout(CalibrationAware::default(), ExecutionMode::Serial),
        "calibration-aware routing must be serial == concurrent"
    );

    print_outcome(&earliest);
    print_outcome(&aware);

    // The acceptance bar: on a fleet with one good and one noisy chip,
    // calibration-aware routing must deliver better fidelity...
    assert!(
        aware.mean_efs < earliest.mean_efs,
        "calibration-aware routing must win on delivered EFS: {:.4} !< {:.4}",
        aware.mean_efs,
        earliest.mean_efs
    );
    assert!(
        aware.mean_jsd < earliest.mean_jsd,
        "calibration-aware routing must win on delivered JSD: {:.4} !< {:.4}",
        aware.mean_jsd,
        earliest.mean_jsd
    );
    // ...at bounded turnaround cost...
    let turnaround_ratio = aware.mean_turnaround / earliest.mean_turnaround;
    assert!(
        turnaround_ratio <= MAX_TURNAROUND_RATIO,
        "fidelity win cost too much turnaround: {turnaround_ratio:.2}x > {MAX_TURNAROUND_RATIO}x"
    );
    // ...by actually steering load toward the well-calibrated chip,
    // reusing cached partition probes across batches.
    let good_jobs = |o: &ShootoutOutcome| {
        o.per_device_jobs
            .iter()
            .find(|(d, _)| d == "ibmq_toronto")
            .map_or(0, |&(_, n)| n)
    };
    assert!(
        good_jobs(&aware) > good_jobs(&earliest),
        "calibration-aware routing must shift load to the good chip"
    );
    assert!(
        aware.cache.hits > 0,
        "repeat dispatches must hit the cross-batch partition cache"
    );

    let gain_efs = (earliest.mean_efs - aware.mean_efs) / earliest.mean_efs;
    let gain_jsd = (earliest.mean_jsd - aware.mean_jsd) / earliest.mean_jsd;
    println!(
        "\ncalibration-aware win: EFS -{:.1}%, JSD -{:.1}%, turnaround {:.2}x",
        100.0 * gain_efs,
        100.0 * gain_jsd,
        turnaround_ratio
    );

    let per_device = |o: &ShootoutOutcome| {
        o.per_device_jobs
            .iter()
            .map(|(d, n)| format!("{{ \"device\": \"{d}\", \"jobs\": {n} }}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"bench\": \"routing_shootout\",\n  \"fleet\": [\"ibmq_toronto_noisy\", \
         \"ibmq_toronto\"],\n  \"jobs\": 18,\n  \"policies\": [\n    {{ \"policy\": \"{}\", \
         \"mean_efs\": {:.6}, \"mean_jsd\": {:.6}, \"mean_turnaround_ns\": {:.1}, \
         \"per_device\": [{}] }},\n    {{ \"policy\": \"{}\", \"mean_efs\": {:.6}, \
         \"mean_jsd\": {:.6}, \"mean_turnaround_ns\": {:.1}, \"per_device\": [{}] }}\n  ],\n  \
         \"efs_gain\": {:.4},\n  \"jsd_gain\": {:.4},\n  \"turnaround_ratio\": {:.4},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {}\n}}\n",
        earliest.policy,
        earliest.mean_efs,
        earliest.mean_jsd,
        earliest.mean_turnaround,
        per_device(&earliest),
        aware.policy,
        aware.mean_efs,
        aware.mean_jsd,
        aware.mean_turnaround,
        per_device(&aware),
        gain_efs,
        gain_jsd,
        turnaround_ratio,
        aware.cache.hits,
        aware.cache.misses,
    );
    std::fs::write("BENCH_routing_shootout.json", &json)
        .expect("write BENCH_routing_shootout.json");
    println!("wrote BENCH_routing_shootout.json");
}
