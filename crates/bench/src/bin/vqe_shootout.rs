//! Regenerates `BENCH_vqe_shootout.json`: the H2 VQE grid driven as a
//! streaming campaign through the runtime [`Service`], multiprogrammed
//! versus serialized, against the direct-pipeline baseline.
//!
//! Three executions of the same θ grid (commuting-group measurement
//! circuits, [`VqeCampaign`]):
//!
//! - **multiprogrammed** — campaign rounds co-scheduled through a
//!   Service with batching headroom, so each round's measurement
//!   groups share one dispatch;
//! - **serialized** — the identical campaign on a `max_parallel = 1`
//!   Service (one batch per job, the no-multiprogramming ablation);
//! - **direct** — the commuting groups run one circuit at a time
//!   through [`execute_parallel`], the pre-Service pipeline baseline.
//!
//! Doubles as the CI smoke check of the campaign seam — it **asserts**:
//!
//! - the Service campaign is serial == concurrent **bit-for-bit**
//!   (identical [`CampaignRun`]s, energies and scheduling stats);
//! - all three paths land on the same grid-minimum energy within a
//!   noise tolerance, and within chemical-accuracy scale of the
//!   noiseless grid minimum (the quiet fixture makes that bar honest);
//! - the grid minimum sits in the well around the exact H2 ground
//!   energy from the eigensolver;
//! - multiprogramming strictly reduces scheduler batches *and*
//!   campaign makespan versus the serialized Service.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin vqe_shootout            # full shots
//! cargo run --release -p qucp-bench --bin vqe_shootout -- --smoke # quick CI run
//! ```
//!
//! [`Service`]: qucp_runtime::Service
//! [`VqeCampaign`]: qucp_vqe::VqeCampaign
//! [`CampaignRun`]: qucp_runtime::CampaignRun
//! [`execute_parallel`]: qucp_core::execute_parallel

use qucp_core::{execute_parallel, strategy, ParallelConfig};
use qucp_device::{Calibration, CrosstalkModel, Device, Topology};
use qucp_runtime::{run_campaign, CampaignStats, ExecutionMode, Service};
use qucp_sim::{noiseless_probabilities, ExecutionConfig};
use qucp_vqe::{
    group_energy, group_energy_exact, h2_exact_ground_energy, h2_hamiltonian, measurement_circuit,
    tied_ansatz, VqeCampaign,
};

/// θ grid points (the paper's Table III row (a)).
const THETA_POINTS: usize = 8;

/// Ansatz repetitions.
const REPS: usize = 2;

/// Fixture seed.
const SEED: u64 = qucp_bench::EXPERIMENT_SEED;

/// Shot-noise tolerance for cross-path energy agreement (Ha). The
/// three paths draw different noise realizations, so they agree only
/// statistically; on the quiet fixture the spread is well under this.
const AGREE_TOL: f64 = 0.05;

/// Bar against the noiseless grid minimum (Ha): chemical-accuracy
/// *scale* (~10× the 1.6 mHa chemical accuracy), achievable because
/// the fixture chip is quiet and the shot budget high.
const NEAR_SIM_TOL: f64 = 0.016;

/// The tied one-parameter ansatz cannot reach the exact ground state,
/// so against the eigensolver the bar is the well depth, not chemical
/// accuracy: the minimum must land in the bonding well.
const NEAR_EXACT_TOL: f64 = 0.25;

/// A quiet 12-qubit chip: enough width to co-schedule both commuting
/// groups of one round, calibrated ~30× better than the IBM fixtures
/// so the energy bars measure the campaign seam, not device noise.
fn quiet_device() -> Device {
    let topo = Topology::grid(3, 4);
    let cal = Calibration::uniform(&topo, 1e-3, 1e-5, 2e-3);
    Device::new("quiet-3x4", topo, cal, CrosstalkModel::none())
}

fn service(mode: ExecutionMode, max_parallel: usize) -> Service {
    Service::builder()
        .device(quiet_device())
        .strategy(strategy::qucp(4.0))
        .max_parallel(max_parallel)
        .mode(mode)
        .seed(SEED)
        // Keep the ansatz structure untouched, as the direct runner does.
        .optimize(false)
        .build()
        .expect("vqe shoot-out service must build")
}

/// One path's outcome.
struct PathOutcome {
    label: &'static str,
    energies: Vec<f64>,
    min_energy: f64,
    /// θ points evaluated per wall-clock second.
    iterations_per_sec: f64,
    /// Campaign scheduling stats (absent for the direct pipeline).
    stats: Option<CampaignStats>,
}

fn run_service_path(label: &'static str, shots: usize, max_parallel: usize) -> PathOutcome {
    let started = std::time::Instant::now();
    let mut svc = service(ExecutionMode::Concurrent, max_parallel);
    let run = run_campaign(&mut svc, VqeCampaign::h2(THETA_POINTS, REPS, shots))
        .expect("vqe campaign must drain");
    let elapsed = started.elapsed().as_secs_f64();
    PathOutcome {
        label,
        min_energy: run.output.min_energy,
        energies: run.output.energies,
        iterations_per_sec: THETA_POINTS as f64 / elapsed,
        stats: Some(run.stats),
    }
}

/// The pre-Service baseline: every measurement circuit through the
/// core pipeline one at a time (the independent-execution shape of the
/// paper's Table III PG row).
fn run_direct_path(shots: usize) -> PathOutcome {
    let device = quiet_device();
    let h = h2_hamiltonian();
    let groups = h.commuting_groups();
    let st = strategy::qucp(4.0);
    let started = std::time::Instant::now();
    let mut energies = Vec::with_capacity(THETA_POINTS);
    for ti in 0..THETA_POINTS {
        let theta = -std::f64::consts::PI
            + 2.0 * std::f64::consts::PI * (ti as f64 + 0.5) / THETA_POINTS as f64;
        let ansatz = tied_ansatz(h.num_qubits(), REPS, theta);
        let mut energy = 0.0;
        for (gi, group) in groups.iter().enumerate() {
            let strings: Vec<_> = group.iter().map(|&i| &h.terms()[i].0).collect();
            let circuit = measurement_circuit(&ansatz, &strings);
            let cfg = ParallelConfig {
                execution: ExecutionConfig::default()
                    .with_shots(shots)
                    .with_seed(SEED.wrapping_add((ti * groups.len() + gi) as u64 * 101)),
                optimize: false,
            };
            let out = execute_parallel(&device, std::slice::from_ref(&circuit), &st, &cfg)
                .expect("direct vqe circuit must run");
            energy += group_energy(&h, group, &out.programs[0].counts);
        }
        energies.push(energy);
    }
    let elapsed = started.elapsed().as_secs_f64();
    PathOutcome {
        label: "direct",
        min_energy: energies.iter().copied().fold(f64::INFINITY, f64::min),
        energies,
        iterations_per_sec: THETA_POINTS as f64 / elapsed,
        stats: None,
    }
}

/// The noiseless grid minimum — the fixture's own "best achievable"
/// reference for the near-sim bar.
fn noiseless_min() -> f64 {
    let h = h2_hamiltonian();
    let groups = h.commuting_groups();
    (0..THETA_POINTS)
        .map(|ti| {
            let theta = -std::f64::consts::PI
                + 2.0 * std::f64::consts::PI * (ti as f64 + 0.5) / THETA_POINTS as f64;
            let ansatz = tied_ansatz(h.num_qubits(), REPS, theta);
            groups
                .iter()
                .map(|group| {
                    let strings: Vec<_> = group.iter().map(|&i| &h.terms()[i].0).collect();
                    let circuit = measurement_circuit(&ansatz, &strings);
                    group_energy_exact(&h, group, &noiseless_probabilities(&circuit))
                })
                .sum::<f64>()
        })
        .fold(f64::INFINITY, f64::min)
}

fn print_outcome(o: &PathOutcome) {
    match &o.stats {
        Some(s) => println!(
            "  {:<16} min {:>10.6} Ha  {:>6.2} iters/s  {:>3} batches  makespan {:>12.0} ns  \
             mean turnaround {:>12.0} ns",
            o.label,
            o.min_energy,
            o.iterations_per_sec,
            s.batches,
            s.makespan,
            s.total_turnaround / s.jobs as f64,
        ),
        None => println!(
            "  {:<16} min {:>10.6} Ha  {:>6.2} iters/s",
            o.label, o.min_energy, o.iterations_per_sec,
        ),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let shots = if smoke { 4096 } else { 16384 };
    println!(
        "vqe shoot-out: H2 grid ({THETA_POINTS} points, {shots} shots, {} mode)\n",
        if smoke { "smoke" } else { "full" }
    );

    // Determinism first: the Service campaign must not depend on
    // per-batch thread scheduling.
    {
        let run = |mode| {
            let mut svc = service(mode, 4);
            run_campaign(&mut svc, VqeCampaign::h2(THETA_POINTS, REPS, shots))
                .expect("vqe campaign must drain")
        };
        assert_eq!(
            run(ExecutionMode::Concurrent),
            run(ExecutionMode::Serial),
            "vqe campaign must be serial == concurrent bit-for-bit"
        );
    }

    let multi = run_service_path("multiprogrammed", shots, 4);
    let serial = run_service_path("serialized", shots, 1);
    let direct = run_direct_path(shots);
    let exact = h2_exact_ground_energy();
    let sim_min = noiseless_min();

    print_outcome(&multi);
    print_outcome(&serial);
    print_outcome(&direct);
    println!("\n  noiseless grid min {sim_min:>10.6} Ha");
    println!("  exact ground       {exact:>10.6} Ha");

    // Energy agreement: all three paths estimate the same grid.
    for other in [&serial, &direct] {
        for (ti, (&a, &b)) in multi.energies.iter().zip(&other.energies).enumerate() {
            assert!(
                (a - b).abs() < AGREE_TOL,
                "θ point {ti}: multiprogrammed {a} vs {} {b} beyond {AGREE_TOL} Ha",
                other.label
            );
        }
    }

    // Accuracy: noise-limited against the noiseless grid minimum,
    // ansatz-limited against the eigensolver.
    for o in [&multi, &serial, &direct] {
        assert!(
            (o.min_energy - sim_min).abs() < NEAR_SIM_TOL,
            "{}: grid min {} vs noiseless {} beyond {NEAR_SIM_TOL} Ha",
            o.label,
            o.min_energy,
            sim_min
        );
        assert!(
            (o.min_energy - exact).abs() < NEAR_EXACT_TOL,
            "{}: grid min {} vs exact {} beyond {NEAR_EXACT_TOL} Ha",
            o.label,
            o.min_energy,
            exact
        );
    }

    // Multiprogramming must pay: strictly fewer scheduler batches and
    // a strictly shorter simulated campaign than the serialized run.
    let (ms, ss) = (multi.stats.unwrap(), serial.stats.unwrap());
    assert!(
        ms.batches < ss.batches,
        "multiprogramming must reduce batches: {} !< {}",
        ms.batches,
        ss.batches
    );
    assert!(
        ms.makespan < ss.makespan,
        "multiprogramming must reduce makespan: {} !< {}",
        ms.makespan,
        ss.makespan
    );

    let path_json = |o: &PathOutcome| {
        let stats = match &o.stats {
            Some(s) => format!(
                ", \"batches\": {}, \"makespan_ns\": {:.1}, \"mean_turnaround_ns\": {:.1}",
                s.batches,
                s.makespan,
                s.total_turnaround / s.jobs as f64
            ),
            None => String::new(),
        };
        format!(
            "    {{ \"path\": \"{}\", \"min_energy\": {:.9}, \"iterations_per_sec\": {:.2}{} }}",
            o.label, o.min_energy, o.iterations_per_sec, stats
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"vqe_shootout\",\n  \"mode\": \"{}\",\n  \"theta_points\": {},\n  \
         \"shots\": {},\n  \"exact_energy\": {:.9},\n  \"noiseless_grid_min\": {:.9},\n  \
         \"paths\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        THETA_POINTS,
        shots,
        exact,
        sim_min,
        [&multi, &serial, &direct]
            .iter()
            .map(|o| path_json(o))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_vqe_shootout.json", &json).expect("write BENCH_vqe_shootout.json");
    println!("\nwrote BENCH_vqe_shootout.json");
}
