//! Regenerates **Table III** and **Fig. 5** of the paper: the H2 ground
//! state estimated with Pauli-grouped measurement (PG), independently
//! versus in parallel (QuCP + PG) on IBM Q 65 Manhattan.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin table3
//! ```

use qucp_bench::{EXPERIMENT_SEED, PAPER_SHOTS};
use qucp_core::report::{fix, pct, Table};
use qucp_core::strategy;
use qucp_device::ibm;
use qucp_vqe::{run_h2_experiment, VqeExperiment};

fn main() {
    let device = ibm::manhattan();
    println!(
        "Table III: H2 ground-state energy under PG and QuCP+PG on {}\n",
        device.name()
    );
    let mut table = Table::new(&[
        "Experiment",
        "process",
        "nc",
        "dE_base (%)",
        "dE_theory (%)",
        "throughput",
    ]);
    let mut fig5 = Vec::new();
    for (label, points) in [("(a)", 8), ("(b)", 10), ("(c)", 12)] {
        let exp = VqeExperiment {
            theta_points: points,
            reps: 2,
            shots: PAPER_SHOTS,
            seed: EXPERIMENT_SEED + points as u64,
            strategy: strategy::qucp(4.0),
        };
        let report = run_h2_experiment(&device, &exp).expect("vqe experiment");
        table.row_owned(vec![
            format!("{label} PG"),
            "independent".into(),
            "1".into(),
            fix(report.delta_base_pg(), 1),
            fix(report.delta_theory_pg(), 1),
            pct(report.pg_throughput),
        ]);
        table.row_owned(vec![
            format!("{label} QuCP+PG"),
            "parallel".into(),
            report.nc.to_string(),
            fix(report.delta_base_parallel(), 1),
            fix(report.delta_theory_parallel(), 1),
            pct(report.parallel_throughput),
        ]);
        fig5.push((label, report));
    }
    print!("{table}");
    println!("\nPaper shape: throughput rises 3.1% -> 49.2/61.5/73.8% while the error");
    println!("rate stays below ~10%; exact ground energy = -1.85728 Ha.\n");

    for (label, report) in &fig5 {
        println!(
            "Fig. 5{label}: energy vs theta ({} optimization points, nc = {})",
            report.points.len(),
            report.nc
        );
        let mut t = Table::new(&["theta", "simulator", "PG", "QuCP+PG"]);
        for p in &report.points {
            t.row_owned(vec![
                fix(p.theta, 3),
                fix(p.energy_sim, 4),
                fix(p.energy_pg, 4),
                fix(p.energy_parallel, 4),
            ]);
        }
        print!("{t}");
        println!(
            "minima: simulator {:.4}, PG {:.4}, QuCP+PG {:.4}, theory {:.4}\n",
            report.sim_min, report.pg_min, report.parallel_min, report.exact
        );
    }
}
