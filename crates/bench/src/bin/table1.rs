//! Regenerates **Table I** of the paper: the overhead of SRB crosstalk
//! characterization on IBM Q 27 Toronto and IBM Q 65 Manhattan.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin table1
//! ```

use qucp_core::report::Table;
use qucp_device::ibm;
use qucp_srb::srb_overhead;

fn main() {
    println!("Table I: Overhead of SRB on different IBM quantum chips");
    println!("(paper values in parentheses; the paper's \"1-hop pairs\" row equals");
    println!("the chip link count — both our link count and the geometric one-hop");
    println!("pair count are reported)\n");

    let toronto = srb_overhead(&ibm::toronto(), 5);
    let manhattan = srb_overhead(&ibm::manhattan(), 5);

    let mut t = Table::new(&["Chip", "IBM Q 27 Toronto", "IBM Q 65 Manhattan"]);
    t.row_owned(vec![
        "qubit".into(),
        format!("{} (27)", toronto.qubits),
        format!("{} (65)", manhattan.qubits),
    ]);
    t.row_owned(vec![
        "links (paper: 1-hop pairs)".into(),
        format!("{} (28)", toronto.links),
        format!("{} (72)", manhattan.links),
    ]);
    t.row_owned(vec![
        "one-hop link pairs".into(),
        format!("{}", toronto.one_hop_pairs),
        format!("{}", manhattan.one_hop_pairs),
    ]);
    t.row_owned(vec![
        "groups".into(),
        format!("{} (9)", toronto.groups),
        format!("{} (11)", manhattan.groups),
    ]);
    t.row_owned(vec![
        "seeds".into(),
        format!("{} (5)", toronto.seeds),
        format!("{} (5)", manhattan.seeds),
    ]);
    t.row_owned(vec![
        "jobs = 3 x groups x seeds".into(),
        format!("{} (135)", toronto.jobs),
        format!("{} (165)", manhattan.jobs),
    ]);
    print!("{t}");

    println!();
    println!(
        "Shape check: jobs grow with chip size ({} -> {}), and characterization",
        toronto.jobs, manhattan.jobs
    );
    println!("remains in the hundreds of jobs — the overhead QuCP eliminates.");
}
