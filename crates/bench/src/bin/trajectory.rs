//! Regenerates `BENCH_trajectory.json`: mean ns/shot of the trajectory
//! engine on the paper-sized job (8192 shots, mapped GHZ-8 on IBM Q
//! Toronto), serial vs shot-sharded at 1/2/4 workers, plus the 4-worker
//! speedup. Doubles as the CI smoke check of the sharded engine (it
//! asserts thread-count determinism on real measurements before
//! timing).
//!
//! ```text
//! cargo run --release -p qucp-bench --bin trajectory
//! ```
//!
//! Numbers are host-dependent; `host_threads` records the parallelism
//! the machine actually offered (the ≥2x speedup target assumes ≥4
//! cores).

use qucp_bench::{run_trajectory_job, trajectory_job, EXPERIMENT_SEED, PAPER_SHOTS};
use qucp_sim::{Counts, ShotParallelism};
use std::time::Instant;

/// Shard count of the benchmark job (fixed: it determines the counts).
const SHARDS: usize = 8;
/// Timed repetitions per configuration (after one warm-up).
const REPS: u32 = 5;

fn mean_ns_per_shot(mut run: impl FnMut() -> Counts) -> f64 {
    run(); // warm-up
    let start = Instant::now();
    for _ in 0..REPS {
        let counts = run();
        assert_eq!(counts.shots(), PAPER_SHOTS);
    }
    start.elapsed().as_nanos() as f64 / f64::from(REPS) / PAPER_SHOTS as f64
}

fn main() {
    let (device, plan) = trajectory_job();
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Smoke check before timing: sharded counts must not depend on the
    // worker count.
    let sharded = |threads: usize| ShotParallelism::Sharded {
        shards: SHARDS,
        threads,
    };
    let reference = run_trajectory_job(&device, &plan, sharded(1));
    for workers in [2usize, 4] {
        assert_eq!(
            run_trajectory_job(&device, &plan, sharded(workers)),
            reference,
            "sharded counts changed with {workers} workers"
        );
    }

    let serial = mean_ns_per_shot(|| run_trajectory_job(&device, &plan, ShotParallelism::Serial));
    let workers = [1usize, 2, 4];
    let per_worker: Vec<f64> = workers
        .iter()
        .map(|&w| mean_ns_per_shot(|| run_trajectory_job(&device, &plan, sharded(w))))
        .collect();

    println!(
        "trajectory bench: ghz_8 on {}, {} shots, {} shards, host_threads = {}",
        device.name(),
        PAPER_SHOTS,
        SHARDS,
        host_threads
    );
    println!("  serial        {serial:9.1} ns/shot");
    let mut entries = String::new();
    for (&w, &ns) in workers.iter().zip(&per_worker) {
        let speedup = serial / ns;
        println!("  sharded x{w}    {ns:9.1} ns/shot  ({speedup:.2}x vs serial)");
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{ \"workers\": {w}, \"ns_per_shot\": {ns:.1}, \"speedup\": {speedup:.3} }}"
        ));
    }
    let speedup_at_4 = serial / per_worker[workers.len() - 1];
    // On hosts that actually offer 4 cores this is the PR's acceptance
    // bar: CI fails if the sharding win regresses below 2x. Single-core
    // hosts (like the container the committed baseline came from) can
    // only report, not enforce.
    if host_threads >= 4 {
        assert!(
            speedup_at_4 >= 2.0,
            "sharded trajectory speedup regressed: {speedup_at_4:.2}x at 4 workers \
             (host_threads = {host_threads}, expected >= 2x)"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"trajectory\",\n  \"device\": \"{}\",\n  \"circuit\": \"ghz_8\",\n  \
         \"shots\": {},\n  \"shards\": {},\n  \"seed\": {},\n  \"host_threads\": {},\n  \
         \"serial_ns_per_shot\": {:.1},\n  \"sharded\": [\n{}\n  ],\n  \
         \"speedup_at_4_workers\": {:.3}\n}}\n",
        device.name(),
        PAPER_SHOTS,
        SHARDS,
        EXPERIMENT_SEED,
        host_threads,
        serial,
        entries,
        speedup_at_4,
    );
    std::fs::write("BENCH_trajectory.json", &json).expect("write BENCH_trajectory.json");
    println!("wrote BENCH_trajectory.json (speedup at 4 workers: {speedup_at_4:.2}x)");
}
