//! Regenerates `BENCH_trajectory.json`: mean ns/shot of the trajectory
//! engine on the paper-sized job (8192 shots, mapped GHZ-8 on IBM Q
//! Toronto) across both trajectory kernels (`Replay` and
//! `SurvivalSkip`), serial vs shot-sharded at 1/2/4 workers. Doubles as
//! the CI smoke check of the engine: before timing it asserts
//! thread-count determinism for both kernels on real measurements, and
//! after timing it enforces the kernel-speedup bar (survival-skip must
//! beat replay serially by ≥3x on *every* host — both kernels time the
//! same single core, so the bar is host-independent).
//!
//! ```text
//! cargo run --release -p qucp-bench --bin trajectory
//! ```
//!
//! Numbers are host-dependent; `host_threads` records the parallelism
//! the machine actually offered (the ≥2x sharding target assumes ≥4
//! cores).

use qucp_bench::{
    run_trajectory_job_with_kernel, trajectory_clean_shot_fraction, trajectory_job,
    EXPERIMENT_SEED, PAPER_SHOTS,
};
use qucp_sim::{Counts, ShotParallelism, TrajectoryKernel};
use std::time::Instant;

/// Shard count of the benchmark job (fixed: it determines the counts).
const SHARDS: usize = 8;
/// Timed repetitions per configuration (after one warm-up).
const REPS: u32 = 5;
/// The tentpole acceptance bar: survival-skip vs replay, both serial.
const KERNEL_SPEEDUP_BAR: f64 = 3.0;

fn mean_ns_per_shot(mut run: impl FnMut() -> Counts) -> f64 {
    run(); // warm-up
    let start = Instant::now();
    for _ in 0..REPS {
        let counts = run();
        assert_eq!(counts.shots(), PAPER_SHOTS);
    }
    start.elapsed().as_nanos() as f64 / f64::from(REPS) / PAPER_SHOTS as f64
}

fn main() {
    let (device, plan) = trajectory_job();
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Smoke check before timing: for either kernel, sharded counts must
    // not depend on the worker count.
    let sharded = |threads: usize| ShotParallelism::Sharded {
        shards: SHARDS,
        threads,
    };
    for kernel in [TrajectoryKernel::Replay, TrajectoryKernel::SurvivalSkip] {
        let reference = run_trajectory_job_with_kernel(&device, &plan, sharded(1), kernel);
        for workers in [2usize, 4] {
            assert_eq!(
                run_trajectory_job_with_kernel(&device, &plan, sharded(workers), kernel),
                reference,
                "{kernel:?} sharded counts changed with {workers} workers"
            );
        }
    }

    let workers = [1usize, 2, 4];
    let time_kernel = |kernel: TrajectoryKernel| {
        let serial = mean_ns_per_shot(|| {
            run_trajectory_job_with_kernel(&device, &plan, ShotParallelism::Serial, kernel)
        });
        let per_worker: Vec<f64> = workers
            .iter()
            .map(|&w| {
                mean_ns_per_shot(|| {
                    run_trajectory_job_with_kernel(&device, &plan, sharded(w), kernel)
                })
            })
            .collect();
        (serial, per_worker)
    };
    let (replay_serial, replay_sharded) = time_kernel(TrajectoryKernel::Replay);
    let (survival_serial, survival_sharded) = time_kernel(TrajectoryKernel::SurvivalSkip);
    let clean_fraction = trajectory_clean_shot_fraction(&device, &plan);
    let kernel_speedup = replay_serial / survival_serial;

    println!(
        "trajectory bench: ghz_8 on {}, {} shots, {} shards, host_threads = {}",
        device.name(),
        PAPER_SHOTS,
        SHARDS,
        host_threads
    );
    println!("  clean-shot fraction {clean_fraction:.4}");
    let mut sections = String::new();
    for (label, key, serial, per_worker) in [
        (
            "replay",
            "serial_ns_per_shot",
            replay_serial,
            &replay_sharded,
        ),
        (
            "survival_skip",
            "survival_serial_ns_per_shot",
            survival_serial,
            &survival_sharded,
        ),
    ] {
        println!("  {label:<13} serial {serial:9.1} ns/shot");
        let mut entries = String::new();
        for (&w, &ns) in workers.iter().zip(per_worker) {
            let speedup = serial / ns;
            println!("  {label:<13} x{w}     {ns:9.1} ns/shot  ({speedup:.2}x vs serial)");
            if !entries.is_empty() {
                entries.push_str(",\n");
            }
            entries.push_str(&format!(
                "    {{ \"workers\": {w}, \"ns_per_shot\": {ns:.1}, \"speedup\": {speedup:.3} }}"
            ));
        }
        let array_key = if label == "replay" {
            "sharded"
        } else {
            "survival_sharded"
        };
        sections.push_str(&format!(
            "  \"{key}\": {serial:.1},\n  \"{array_key}\": [\n{entries}\n  ],\n"
        ));
    }
    println!("  kernel speedup (survival vs replay, serial): {kernel_speedup:.2}x");

    // The tentpole acceptance bar, enforced on every host: both kernels
    // ran the same job on the same core, so their ratio is portable.
    assert!(
        kernel_speedup >= KERNEL_SPEEDUP_BAR,
        "survival-skip kernel speedup regressed: {kernel_speedup:.2}x vs replay \
         (expected >= {KERNEL_SPEEDUP_BAR}x)"
    );

    let speedup_at_4 = replay_serial / replay_sharded[workers.len() - 1];
    // On hosts that actually offer 4 cores the sharding win is also a
    // bar: CI fails if it regresses below 2x. Single-core hosts (like
    // the container the committed baseline came from) can only report,
    // not enforce.
    if host_threads >= 4 {
        assert!(
            speedup_at_4 >= 2.0,
            "sharded trajectory speedup regressed: {speedup_at_4:.2}x at 4 workers \
             (host_threads = {host_threads}, expected >= 2x)"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"trajectory\",\n  \"device\": \"{}\",\n  \"circuit\": \"ghz_8\",\n  \
         \"shots\": {},\n  \"shards\": {},\n  \"seed\": {},\n  \"host_threads\": {},\n\
         {}  \"clean_shot_fraction\": {:.4},\n  \
         \"kernel_speedup\": {:.3},\n  \"speedup_at_4_workers\": {:.3}\n}}\n",
        device.name(),
        PAPER_SHOTS,
        SHARDS,
        EXPERIMENT_SEED,
        host_threads,
        sections,
        clean_fraction,
        kernel_speedup,
        speedup_at_4,
    );
    std::fs::write("BENCH_trajectory.json", &json).expect("write BENCH_trajectory.json");
    println!(
        "wrote BENCH_trajectory.json (kernel speedup {kernel_speedup:.2}x, \
         sharding at 4 workers {speedup_at_4:.2}x)"
    );
}
