//! Ablation **A4**: the *full* QuMC pipeline — run an actual SRB
//! campaign on the simulated device, build the measured crosstalk map
//! from it, and compare partitioning driven by (i) SRB measurements,
//! (ii) the ground truth SRB estimates, and (iii) QuCP's σ — closing the
//! loop on the paper's "QuCP emulates SRB-characterized QuMC" claim.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin ablation_srb_qumc
//! ```

use qucp_bench::{combo_circuits, combo_label, EXPERIMENT_SEED, FIG3B_COMBOS};
use qucp_core::report::{fix, Table};
use qucp_core::{execute_parallel, strategy, ParallelConfig};
use qucp_device::ibm;
use qucp_sim::ExecutionConfig;
use qucp_srb::{run_campaign, RbConfig};

fn main() {
    let device = ibm::toronto();
    println!(
        "Ablation A4: QuMC from a real SRB campaign ({})\n",
        device.name()
    );

    let rb_cfg = RbConfig {
        lengths: vec![2, 8, 16, 32, 48],
        seeds: 3,
        shots: 512,
        base_seed: 0xF162,
    };
    println!("running the SRB campaign ({} jobs)...", 3 * rb_cfg.seeds);
    let report = run_campaign(&device, &rb_cfg, usize::MAX);
    let srb_map = strategy::crosstalk_map_from_campaign(&report);
    println!(
        "campaign flagged {} significant pairs (ground truth has {}).\n",
        srb_map.len(),
        device
            .crosstalk()
            .significant_pairs(qucp_srb::SIGNIFICANT_RATIO)
            .len()
    );

    let strategies = [
        ("QuMC (SRB-measured)", strategy::qumc(srb_map)),
        (
            "QuMC (ground truth)",
            strategy::qumc_with_ground_truth(&device),
        ),
        ("QuCP (sigma = 4)", strategy::qucp(4.0)),
    ];
    let cfg = ParallelConfig {
        execution: ExecutionConfig::default()
            .with_shots(4096)
            .with_seed(EXPERIMENT_SEED),
        optimize: true,
    };

    let mut t = Table::new(&["workload", "QuMC(SRB)", "QuMC(truth)", "QuCP(4)"]);
    let mut sums = [0.0f64; 3];
    for combo in &FIG3B_COMBOS[4..] {
        let programs = combo_circuits(combo);
        let mut row = vec![combo_label(combo)];
        for (i, (_, strat)) in strategies.iter().enumerate() {
            let out = execute_parallel(&device, &programs, strat, &cfg).expect("run");
            let pst = out.mean_pst().expect("deterministic suite");
            sums[i] += pst;
            row.push(fix(pst, 3));
        }
        t.row_owned(row);
    }
    print!("{t}");
    let n = FIG3B_COMBOS[4..].len() as f64;
    println!(
        "\nMean PST: QuMC(SRB) {:.3} | QuMC(truth) {:.3} | QuCP {:.3}",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
    println!("All three land within noise of each other — σ = 4 delivers QuMC-grade");
    println!("partitions with zero characterization jobs, the paper's core claim.");
}
