//! Regenerates `BENCH_drift_shootout.json`: epoch-aware vs stale-cache
//! routing on the skewed two-chip fleet under calibration drift.
//!
//! The experiment: a burst on the original calibrations (the noisy twin
//! ~3× worse than the good Toronto), then a deterministic `SeesawDrift`
//! that *flips* the fleet — the noisy twin anneals to good while the
//! good chip degrades ~3.4× — then a second, identical burst.
//! `CalibrationAware` routing probes through the cross-batch planning
//! cache both times; the only difference between the two runs is the
//! cache-invalidation mode. Doubles as the CI smoke check of the
//! live-fleet refactor — it **asserts** that epoch-aware invalidation
//! beats the stale cache on post-drift delivered fidelity (mean EFS and
//! mean JSD), that the pre-drift bursts agree exactly, and that both
//! modes stay deterministic (serial == concurrent, bit for bit).
//!
//! ```text
//! cargo run --release -p qucp-bench --bin drift_shootout
//! ```

use qucp_bench::{drift_shootout, DriftOutcome, DRIFT_STEPS, SEESAW_RATE};
use qucp_runtime::{CacheInvalidation, ExecutionMode};

fn print_outcome(label: &str, o: &DriftOutcome) {
    println!(
        "  {label:<12} pre-drift EFS {:.4} / JSD {:.4}   post-drift EFS {:.4} / JSD {:.4}   \
         cache {}h/{}m/{}inv",
        o.mean_efs_before,
        o.mean_jsd_before,
        o.mean_efs_after,
        o.mean_jsd_after,
        o.cache.hits,
        o.cache.misses,
        o.cache.invalidated
    );
    for (device, jobs) in &o.fresh_jobs_per_device {
        println!("    post-drift {device:<22} {jobs:>3} jobs");
    }
}

fn main() {
    println!(
        "drift shoot-out: 9 + 9 jobs on [ibmq_toronto_noisy, ibmq_toronto], \
         seesaw x{SEESAW_RATE}/step over {DRIFT_STEPS} steps\n"
    );

    // Determinism first: drift, epochs and routing must not depend on
    // per-batch thread scheduling.
    let aware = drift_shootout(CacheInvalidation::EpochAware, ExecutionMode::Concurrent);
    let stale = drift_shootout(CacheInvalidation::Never, ExecutionMode::Concurrent);
    assert_eq!(
        aware,
        drift_shootout(CacheInvalidation::EpochAware, ExecutionMode::Serial),
        "epoch-aware run must be serial == concurrent"
    );
    assert_eq!(
        stale,
        drift_shootout(CacheInvalidation::Never, ExecutionMode::Serial),
        "stale-cache run must be serial == concurrent"
    );

    print_outcome("epoch-aware", &aware);
    print_outcome("stale-cache", &stale);

    // Until the drift fires the two services are byte-identical, so the
    // pre-drift burst must agree exactly — the comparison isolates the
    // cache-invalidation protocol and nothing else.
    assert_eq!(
        (aware.mean_efs_before, aware.mean_jsd_before),
        (stale.mean_efs_before, stale.mean_jsd_before),
        "pre-drift bursts must be identical across cache modes"
    );
    // Both runs saw the same epoch bumps (drift is cache-independent)…
    assert_eq!(aware.epoch_bumps, stale.epoch_bumps);
    assert!(
        aware.epoch_bumps >= DRIFT_STEPS as usize,
        "the seesaw must bump every step"
    );
    // …but only the epoch-aware run dropped stale probes.
    assert!(aware.cache.invalidated > 0, "epoch bumps must invalidate");
    assert_eq!(stale.cache.invalidated, 0, "Never mode must not drop");

    // The acceptance bar: after the fleet flips, routing by current
    // calibration must beat routing by the stale cached picture.
    assert!(
        aware.mean_efs_after < stale.mean_efs_after,
        "epoch-aware routing must win on post-drift EFS: {:.4} !< {:.4}",
        aware.mean_efs_after,
        stale.mean_efs_after
    );
    assert!(
        aware.mean_jsd_after < stale.mean_jsd_after,
        "epoch-aware routing must win on post-drift JSD: {:.4} !< {:.4}",
        aware.mean_jsd_after,
        stale.mean_jsd_after
    );
    // The mechanism: the epoch-aware run re-routes the post-drift burst
    // to the annealed twin; the stale run keeps chasing the degraded
    // chip it remembers as good.
    let fresh_on = |o: &DriftOutcome, device: &str| {
        o.fresh_jobs_per_device
            .iter()
            .find(|(d, _)| d == device)
            .map_or(0, |&(_, n)| n)
    };
    assert!(
        fresh_on(&aware, "ibmq_toronto_noisy") > fresh_on(&stale, "ibmq_toronto_noisy"),
        "epoch-aware routing must shift post-drift load to the annealed twin"
    );

    let gain_efs = (stale.mean_efs_after - aware.mean_efs_after) / stale.mean_efs_after;
    let gain_jsd = (stale.mean_jsd_after - aware.mean_jsd_after) / stale.mean_jsd_after;
    println!(
        "\nepoch-aware win on the post-drift burst: EFS -{:.1}%, JSD -{:.1}%",
        100.0 * gain_efs,
        100.0 * gain_jsd
    );

    let per_device = |o: &DriftOutcome| {
        o.fresh_jobs_per_device
            .iter()
            .map(|(d, n)| format!("{{ \"device\": \"{d}\", \"jobs\": {n} }}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mode_json = |label: &str, o: &DriftOutcome| {
        format!(
            "{{ \"mode\": \"{label}\", \"mean_efs_before\": {:.6}, \"mean_jsd_before\": {:.6}, \
             \"mean_efs_after\": {:.6}, \"mean_jsd_after\": {:.6}, \"mean_turnaround_ns\": \
             {:.1}, \"epoch_bumps\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"cache_invalidated\": {}, \"post_drift_per_device\": [{}] }}",
            o.mean_efs_before,
            o.mean_jsd_before,
            o.mean_efs_after,
            o.mean_jsd_after,
            o.mean_turnaround,
            o.epoch_bumps,
            o.cache.hits,
            o.cache.misses,
            o.cache.invalidated,
            per_device(o),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"drift_shootout\",\n  \"fleet\": [\"ibmq_toronto_noisy\", \
         \"ibmq_toronto\"],\n  \"jobs_per_burst\": 9,\n  \"seesaw_rate\": {SEESAW_RATE},\n  \
         \"drift_steps\": {DRIFT_STEPS},\n  \"modes\": [\n    {},\n    {}\n  ],\n  \
         \"efs_gain_post_drift\": {gain_efs:.4},\n  \"jsd_gain_post_drift\": {gain_jsd:.4}\n}}\n",
        mode_json("epoch_aware", &aware),
        mode_json("stale_cache", &stale),
    );
    std::fs::write("BENCH_drift_shootout.json", &json).expect("write BENCH_drift_shootout.json");
    println!("wrote BENCH_drift_shootout.json");
}
