//! Regenerates `BENCH_fleet_shootout.json`: the heavy-traffic fleet
//! scale-out shoot-out. Each configuration of {devices} × {jobs} drains
//! a Poisson-arrival library workload FIFO through a generated
//! heterogeneous [`mega_fleet`], once on the **indexed** queue path
//! (arrival-ordered index, O(1) seq lookup, width-bucketed admission)
//! and once on the **linear** seed-path ablation, and reports jobs/sec,
//! mean and p99 turnaround, and dispatch-loop ns/job (wall time minus
//! simulator execution time).
//!
//! Doubles as the CI smoke check of the scale-out seam — it **asserts**:
//!
//! - both queue paths produce bit-identical [`ServiceReport`]s (so the
//!   simulated schedule, including p99 turnaround, cannot regress);
//! - serial == concurrent execution at the smoke configuration;
//! - the indexed path wins on dispatch-loop ns/job (≥ 5× at the
//!   100-device × 20k-job configuration of the full grid).
//!
//! ```text
//! cargo run --release -p qucp-bench --bin fleet_shootout            # full grid
//! cargo run --release -p qucp-bench --bin fleet_shootout -- --smoke # 16 × 1k
//! ```
//!
//! [`mega_fleet`]: qucp_bench::mega_fleet
//! [`ServiceReport`]: qucp_runtime::ServiceReport

use qucp_bench::{fleet_shootout, FleetOutcome};
use qucp_runtime::{ExecutionMode, QueueIndexing};

/// The full measurement grid: fleet sizes × job counts.
const FULL_GRID: [(usize, usize); 6] = [
    (2, 1_000),
    (16, 1_000),
    (100, 1_000),
    (2, 20_000),
    (16, 20_000),
    (100, 20_000),
];

/// The CI smoke configuration.
const SMOKE: (usize, usize) = (16, 1_000);

/// Speed-up bar at the heaviest configuration of the full grid.
const MIN_SPEEDUP: f64 = 5.0;

fn label(indexing: QueueIndexing) -> &'static str {
    match indexing {
        QueueIndexing::Indexed => "indexed",
        QueueIndexing::Linear => "linear",
    }
}

fn print_outcome(o: &FleetOutcome) {
    println!(
        "  {:<8} {:>9.0} jobs/s  dispatch {:>8.0} ns/job  mean {:>12.0} ns  p99 {:>12.0} ns",
        label(o.indexing),
        o.jobs_per_sec,
        o.dispatch_ns_per_job,
        o.mean_turnaround_ns,
        o.p99_turnaround_ns,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let grid: &[(usize, usize)] = if smoke { &[SMOKE] } else { &FULL_GRID };
    println!(
        "fleet shoot-out: indexed vs linear queue path ({} grid)\n",
        if smoke { "smoke" } else { "full" }
    );

    // Determinism first: at the smoke configuration the drained report
    // must not depend on per-batch thread scheduling.
    {
        let (devices, jobs) = SMOKE;
        let (_, concurrent) = fleet_shootout(
            devices,
            jobs,
            QueueIndexing::Indexed,
            ExecutionMode::Concurrent,
        );
        let (_, serial) =
            fleet_shootout(devices, jobs, QueueIndexing::Indexed, ExecutionMode::Serial);
        assert_eq!(
            concurrent, serial,
            "fleet shoot-out must be serial == concurrent"
        );
    }

    let mut rows = Vec::new();
    let mut heavy_speedup = None;
    for &(devices, jobs) in grid {
        println!("{devices} devices x {jobs} jobs");
        let (indexed, indexed_report) = fleet_shootout(
            devices,
            jobs,
            QueueIndexing::Indexed,
            ExecutionMode::Concurrent,
        );
        let (linear, linear_report) = fleet_shootout(
            devices,
            jobs,
            QueueIndexing::Linear,
            ExecutionMode::Concurrent,
        );

        // The ablation is observational-equivalence-pinned: identical
        // simulated schedule, events, and per-job results — so the p99
        // turnaround is *exactly* no worse, not just statistically.
        assert_eq!(
            indexed_report, linear_report,
            "queue paths diverged at {devices} devices x {jobs} jobs"
        );

        print_outcome(&indexed);
        print_outcome(&linear);
        let speedup = linear.dispatch_ns_per_job / indexed.dispatch_ns_per_job;
        println!("  speedup  {speedup:>8.2}x dispatch-loop\n");
        if (devices, jobs) == (100, 20_000) {
            heavy_speedup = Some(speedup);
        }
        rows.push((indexed, linear, speedup));
    }

    // The acceptance bar. Wall-clock ratios jitter, so the hard ≥5×
    // bar applies only at the heavy configuration, where the linear
    // path's O(n) rebuilds dominate by orders of magnitude; everywhere
    // else the indexed path must simply win.
    if let Some(speedup) = heavy_speedup {
        assert!(
            speedup >= MIN_SPEEDUP,
            "indexed path must win >= {MIN_SPEEDUP}x at 100 x 20k, got {speedup:.2}x"
        );
    }
    let (smoke_indexed, smoke_linear, _) = &rows[if smoke { 0 } else { 1 }];
    assert!(
        smoke_indexed.dispatch_ns < smoke_linear.dispatch_ns,
        "indexed path must beat the linear ablation at the smoke config: {} !< {}",
        smoke_indexed.dispatch_ns,
        smoke_linear.dispatch_ns
    );

    let row_json = |o: &FleetOutcome| {
        format!(
            "{{ \"indexing\": \"{}\", \"jobs_per_sec\": {:.1}, \"dispatch_ns_per_job\": {:.1}, \
             \"mean_turnaround_ns\": {:.1}, \"p99_turnaround_ns\": {:.1} }}",
            label(o.indexing),
            o.jobs_per_sec,
            o.dispatch_ns_per_job,
            o.mean_turnaround_ns,
            o.p99_turnaround_ns,
        )
    };
    let configs = rows
        .iter()
        .map(|(i, l, speedup)| {
            format!(
                "    {{ \"devices\": {}, \"jobs\": {}, \"speedup\": {:.2},\n      \
                 \"indexed\": {},\n      \"linear\": {} }}",
                i.devices,
                i.jobs,
                speedup,
                row_json(i),
                row_json(l),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"fleet_shootout\",\n  \"grid\": \"{}\",\n  \"configs\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        configs,
    );
    std::fs::write("BENCH_fleet_shootout.json", &json).expect("write BENCH_fleet_shootout.json");
    println!("wrote BENCH_fleet_shootout.json");
}
