//! Regenerates `BENCH_fleet_shootout.json`: the heavy-traffic fleet
//! scale-out shoot-out. Each configuration of {devices} × {jobs} drains
//! a Poisson-arrival library workload FIFO through a generated
//! heterogeneous [`mega_fleet`], once on the **indexed** queue path
//! (arrival-ordered index, O(1) seq lookup, width-bucketed admission)
//! and once on the **linear** seed-path ablation, and reports jobs/sec,
//! mean and p99 turnaround, dispatch-loop ns/job (wall time minus
//! simulator execution and planning time), planning ns/job and the
//! plan-cache hit rate.
//!
//! Doubles as the CI smoke check of the scale-out seam — it **asserts**:
//!
//! - both queue paths produce bit-identical [`ServiceReport`]s (so the
//!   simulated schedule, including p99 turnaround, cannot regress);
//! - the memoized planning path ([`PlanMemo::EpochKeyed`], the default)
//!   produces a report bit-identical to the [`PlanMemo::Never`]
//!   ablation, and cuts planning ns/job ≥ 2× at the smoke scale and at
//!   the heavy 100 × 20k configuration;
//! - sharded dispatch ([`DispatchSharding::Grouped`]) produces a report
//!   bit-identical to the single loop;
//! - serial == concurrent execution at the smoke configuration;
//! - the indexed path wins on dispatch-loop ns/job (≥ 5× at the
//!   100-device × 20k-job configuration of the full grid).
//!
//! ```text
//! cargo run --release -p qucp-bench --bin fleet_shootout            # full grid
//! cargo run --release -p qucp-bench --bin fleet_shootout -- --smoke # 16 × 1k
//! ```
//!
//! [`mega_fleet`]: qucp_bench::mega_fleet
//! [`ServiceReport`]: qucp_runtime::ServiceReport
//! [`PlanMemo::EpochKeyed`]: qucp_runtime::PlanMemo::EpochKeyed
//! [`PlanMemo::Never`]: qucp_runtime::PlanMemo::Never
//! [`DispatchSharding::Grouped`]: qucp_runtime::DispatchSharding::Grouped

use qucp_bench::{fleet_shootout, fleet_shootout_with, FleetOutcome};
use qucp_runtime::{DispatchSharding, ExecutionMode, PlanMemo, QueueIndexing};

/// The full measurement grid: fleet sizes × job counts.
const FULL_GRID: [(usize, usize); 6] = [
    (2, 1_000),
    (16, 1_000),
    (100, 1_000),
    (2, 20_000),
    (16, 20_000),
    (100, 20_000),
];

/// The CI smoke configuration.
const SMOKE: (usize, usize) = (16, 1_000);

/// Speed-up bar at the heaviest configuration of the full grid.
const MIN_SPEEDUP: f64 = 5.0;

/// Planning speed-up bar for the memoized path vs the `PlanMemo::Never`
/// ablation — enforced at the smoke scale and at 100 × 20k.
const MIN_PLAN_SPEEDUP: f64 = 2.0;

/// Group count of the sharded-dispatch equivalence run.
const SHARD_GROUPS: usize = 4;

fn label(indexing: QueueIndexing) -> &'static str {
    match indexing {
        QueueIndexing::Indexed => "indexed",
        QueueIndexing::Linear => "linear",
    }
}

fn memo_label(memo: PlanMemo) -> &'static str {
    match memo {
        PlanMemo::EpochKeyed => "memoized",
        PlanMemo::Never => "no-memo",
    }
}

fn print_outcome(o: &FleetOutcome) {
    println!(
        "  {:<8} {:<8} {:>9.0} jobs/s  dispatch {:>8.0} ns/job  plan {:>8.0} ns/job \
         (hit {:>5.1}%)  mean {:>12.0} ns  p99 {:>12.0} ns",
        label(o.indexing),
        memo_label(o.plan_memo),
        o.jobs_per_sec,
        o.dispatch_ns_per_job,
        o.planning_ns_per_job,
        o.plan_hit_rate * 100.0,
        o.mean_turnaround_ns,
        o.p99_turnaround_ns,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let grid: &[(usize, usize)] = if smoke { &[SMOKE] } else { &FULL_GRID };
    println!(
        "fleet shoot-out: indexed vs linear queue path, memoized vs fresh planning ({} grid)\n",
        if smoke { "smoke" } else { "full" }
    );

    // Determinism first: at the smoke configuration the drained report
    // must not depend on per-batch thread scheduling.
    {
        let (devices, jobs) = SMOKE;
        let (_, concurrent) = fleet_shootout(
            devices,
            jobs,
            QueueIndexing::Indexed,
            ExecutionMode::Concurrent,
        );
        let (_, serial) =
            fleet_shootout(devices, jobs, QueueIndexing::Indexed, ExecutionMode::Serial);
        assert_eq!(
            concurrent, serial,
            "fleet shoot-out must be serial == concurrent"
        );
    }

    let mut rows = Vec::new();
    let mut heavy_speedup = None;
    let mut heavy_plan_speedup = None;
    let mut smoke_plan_speedup = None;
    for &(devices, jobs) in grid {
        println!("{devices} devices x {jobs} jobs");
        // The default path: indexed queue, memoized planning, single
        // dispatch loop.
        let (indexed, indexed_report) = fleet_shootout(
            devices,
            jobs,
            QueueIndexing::Indexed,
            ExecutionMode::Concurrent,
        );
        let (linear, linear_report) = fleet_shootout(
            devices,
            jobs,
            QueueIndexing::Linear,
            ExecutionMode::Concurrent,
        );
        // Ablation: every batch re-plans from scratch.
        let (no_memo, no_memo_report) = fleet_shootout_with(
            devices,
            jobs,
            QueueIndexing::Indexed,
            ExecutionMode::Concurrent,
            PlanMemo::Never,
            DispatchSharding::Single,
            None,
        );
        // Sharded dispatch: per-group execution workers, merged in
        // batch order.
        let (_sharded, sharded_report) = fleet_shootout_with(
            devices,
            jobs,
            QueueIndexing::Indexed,
            ExecutionMode::Concurrent,
            PlanMemo::default(),
            DispatchSharding::Grouped,
            Some(SHARD_GROUPS),
        );

        // Every seam is observational-equivalence-pinned: identical
        // simulated schedule, events, and per-job results — so the p99
        // turnaround is *exactly* no worse, not just statistically.
        assert_eq!(
            indexed_report, linear_report,
            "queue paths diverged at {devices} devices x {jobs} jobs"
        );
        assert_eq!(
            indexed_report, no_memo_report,
            "plan memoization changed the schedule at {devices} devices x {jobs} jobs"
        );
        assert_eq!(
            indexed_report, sharded_report,
            "sharded dispatch diverged from the single loop at {devices} devices x {jobs} jobs"
        );

        print_outcome(&indexed);
        print_outcome(&linear);
        print_outcome(&no_memo);
        let speedup = linear.dispatch_ns_per_job / indexed.dispatch_ns_per_job;
        let plan_speedup =
            no_memo.planning_ns_per_job / indexed.planning_ns_per_job.max(f64::MIN_POSITIVE);
        println!("  speedup  {speedup:>8.2}x dispatch-loop  {plan_speedup:>8.2}x planning\n");
        if (devices, jobs) == (100, 20_000) {
            heavy_speedup = Some(speedup);
            heavy_plan_speedup = Some(plan_speedup);
        }
        if (devices, jobs) == SMOKE {
            smoke_plan_speedup = Some(plan_speedup);
        }
        rows.push((indexed, linear, no_memo, speedup, plan_speedup));
    }

    // The acceptance bars. Wall-clock ratios jitter, so the hard ≥5×
    // dispatch bar applies only at the heavy configuration, where the
    // linear path's O(n) rebuilds dominate by orders of magnitude;
    // everywhere else the indexed path must simply win. Planning is
    // different: a cache hit skips the partition/map/merge pipeline
    // wholesale, so the ≥2× bar holds even at smoke scale.
    if let Some(speedup) = heavy_speedup {
        assert!(
            speedup >= MIN_SPEEDUP,
            "indexed path must win >= {MIN_SPEEDUP}x at 100 x 20k, got {speedup:.2}x"
        );
    }
    if let Some(plan_speedup) = heavy_plan_speedup {
        assert!(
            plan_speedup >= MIN_PLAN_SPEEDUP,
            "memoized planning must win >= {MIN_PLAN_SPEEDUP}x at 100 x 20k, got {plan_speedup:.2}x"
        );
    }
    if let Some(plan_speedup) = smoke_plan_speedup {
        assert!(
            plan_speedup >= MIN_PLAN_SPEEDUP,
            "memoized planning must win >= {MIN_PLAN_SPEEDUP}x at the smoke scale, got {plan_speedup:.2}x"
        );
    }
    let (smoke_indexed, smoke_linear, _, _, _) = &rows[if smoke { 0 } else { 1 }];
    assert!(
        smoke_indexed.dispatch_ns < smoke_linear.dispatch_ns,
        "indexed path must beat the linear ablation at the smoke config: {} !< {}",
        smoke_indexed.dispatch_ns,
        smoke_linear.dispatch_ns
    );

    let row_json = |o: &FleetOutcome| {
        format!(
            "{{ \"indexing\": \"{}\", \"plan_memo\": \"{}\", \"jobs_per_sec\": {:.1}, \
             \"dispatch_ns_per_job\": {:.1}, \"planning_ns_per_job\": {:.1}, \
             \"plan_hit_rate\": {:.4}, \"mean_turnaround_ns\": {:.1}, \
             \"p99_turnaround_ns\": {:.1} }}",
            label(o.indexing),
            memo_label(o.plan_memo),
            o.jobs_per_sec,
            o.dispatch_ns_per_job,
            o.planning_ns_per_job,
            o.plan_hit_rate,
            o.mean_turnaround_ns,
            o.p99_turnaround_ns,
        )
    };
    let configs = rows
        .iter()
        .map(|(i, l, n, speedup, plan_speedup)| {
            format!(
                "    {{ \"devices\": {}, \"jobs\": {}, \"speedup\": {:.2}, \
                 \"plan_speedup\": {:.2},\n      \
                 \"indexed\": {},\n      \"linear\": {},\n      \"no_memo\": {} }}",
                i.devices,
                i.jobs,
                speedup,
                plan_speedup,
                row_json(i),
                row_json(l),
                row_json(n),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"fleet_shootout\",\n  \"grid\": \"{}\",\n  \"configs\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        configs,
    );
    std::fs::write("BENCH_fleet_shootout.json", &json).expect("write BENCH_fleet_shootout.json");
    println!("wrote BENCH_fleet_shootout.json");
}
