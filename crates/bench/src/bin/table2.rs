//! Regenerates **Table II** of the paper: the benchmark suite.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin table2
//! ```

use qucp_circuit::library::{self, ResultKind};
use qucp_core::report::Table;
use qucp_sim::ideal_outcome;

fn main() {
    println!("Table II: Information of benchmarks\n");
    let mut t = Table::new(&[
        "Benchmark",
        "Qubits",
        "Gates",
        "CX",
        "Result",
        "Ideal output",
    ]);
    for b in library::all() {
        let c = b.circuit();
        let result = match b.result {
            ResultKind::Deterministic => "1",
            ResultKind::Distribution => "dist",
        };
        let ideal = match ideal_outcome(&c) {
            Some(o) => format!("{o:0width$b}", width = c.width()),
            None => "-".to_string(),
        };
        t.row_owned(vec![
            b.name.to_string(),
            c.width().to_string(),
            c.gate_count().to_string(),
            c.cx_count().to_string(),
            result.to_string(),
            ideal,
        ]);
    }
    print!("{t}");
    println!("\nAll rows match the paper's Table II counts exactly (enforced by tests).");
}
