//! Regenerates the **σ-tuning experiment** of Sec. IV-A: sweeping the
//! crosstalk parameter σ and comparing QuCP's partitioning against
//! QuMC's (which uses SRB-measured crosstalk). The paper finds that for
//! σ ≥ 4 QuCP provides the same results as QuMC.
//!
//! Two convergence measures are reported: exact partition-set agreement,
//! and the gap in *ground-truth* partition quality (the plan's EFS
//! re-evaluated with the device's true γ factors) — the latter is what
//! "same results" means operationally, and is robust to ties between
//! equally good regions.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin sigma_tuning
//! ```

use qucp_bench::{combo_circuits, FIG3A_COMBOS, FIG3B_COMBOS};
use qucp_circuit::Circuit;
use qucp_core::report::{fix, Table};
use qucp_core::{efs, plan_workload, strategy, CircuitStats, CrosstalkTreatment, Strategy};
use qucp_device::{Device, Link};

/// The plan's total EFS under the device's full ground-truth crosstalk.
fn true_plan_quality(device: &Device, programs: &[Circuit], strat: &Strategy) -> f64 {
    let truth = CrosstalkTreatment::Measured(device.crosstalk().pairs().collect());
    let (opt, allocs, _) = plan_workload(device, programs, strat, true).expect("plan");
    let mut total = 0.0;
    for (i, alloc) in allocs.iter().enumerate() {
        let other_links: Vec<Link> = allocs
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .flat_map(|(_, a)| device.topology().links_within(&a.qubits))
            .collect();
        total += efs(
            device,
            &alloc.qubits,
            &CircuitStats::of(&opt[i]),
            &other_links,
            &truth,
        )
        .score;
    }
    total
}

fn main() {
    let device = qucp_device::ibm::toronto();
    let qumc = strategy::qumc_with_ground_truth(&device);
    println!("Sigma tuning on {} (Sec. IV-A)\n", device.name());

    let workloads: Vec<Vec<Circuit>> = FIG3A_COMBOS
        .iter()
        .chain(FIG3B_COMBOS.iter())
        .map(combo_circuits)
        .collect();

    // QuMC reference: exact partitions and true quality.
    let reference: Vec<Vec<Vec<usize>>> = workloads
        .iter()
        .map(|w| {
            let (_, allocs, _) = plan_workload(&device, w, &qumc, true).expect("qumc plan");
            allocs.into_iter().map(|a| a.qubits).collect()
        })
        .collect();
    let qumc_quality: Vec<f64> = workloads
        .iter()
        .map(|w| true_plan_quality(&device, w, &qumc))
        .collect();

    let mut t = Table::new(&[
        "sigma",
        "partition agreement",
        "true-EFS gap vs QuMC",
        "crosstalk pairs accepted",
    ]);
    for sigma in [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0] {
        let strat = strategy::qucp(sigma);
        let mut agree = 0usize;
        let mut gap = 0.0;
        let mut xtalk_pairs = 0usize;
        for ((w, reference_partitions), &qq) in workloads.iter().zip(&reference).zip(&qumc_quality)
        {
            let (_, allocs, _) = plan_workload(&device, w, &strat, true).expect("qucp plan");
            let partitions: Vec<Vec<usize>> = allocs.iter().map(|a| a.qubits.clone()).collect();
            if &partitions == reference_partitions {
                agree += 1;
            }
            for a in &allocs {
                xtalk_pairs += a.efs.crosstalk_pairs.len();
            }
            let quality = true_plan_quality(&device, w, &strat);
            gap += (quality - qq) / qq;
        }
        t.row_owned(vec![
            fix(sigma, 1),
            format!("{}/{}", agree, workloads.len()),
            format!("{:+.2}%", 100.0 * gap / workloads.len() as f64),
            xtalk_pairs.to_string(),
        ]);
    }
    print!("{t}");
    println!("\nReading: small sigma accepts placements next to strongly coupled");
    println!("links (large positive quality gap); once sigma reaches the 2-4 range");
    println!("the gap versus SRB-characterized QuMC collapses to ~1% with zero");
    println!("characterization jobs — matching the paper's finding that sigma >= 4");
    println!("makes QuCP equivalent to QuMC (we fix sigma = 4 as they do).");
}
