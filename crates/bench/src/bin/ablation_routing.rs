//! Ablation **A6**: routing backends — the greedy reliability-weighted
//! shortest-path router against the SABRE-style lookahead router
//! (Qiskit's default algorithm, which the paper's compilation baseline
//! uses), by SWAP count and measured fidelity.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin ablation_routing
//! ```

use qucp_bench::EXPERIMENT_SEED;
use qucp_circuit::library;
use qucp_core::report::{fix, Table};
use qucp_core::{
    allocate_partitions, initial_mapping, route, route_sabre, CrosstalkTreatment, MappedProgram,
    PartitionPolicy, SabreOptions,
};
use qucp_device::ibm;
use qucp_sim::{
    ideal_outcome, metrics, noiseless_probabilities, run_noisy, ExecutionConfig, NoiseScaling,
};

fn fidelity(
    device: &qucp_device::Device,
    original: &qucp_circuit::Circuit,
    mp: &MappedProgram,
    seed: u64,
) -> f64 {
    let cfg = ExecutionConfig::default().with_shots(4096).with_seed(seed);
    let counts = run_noisy(
        &mp.circuit,
        &mp.layout,
        device,
        &NoiseScaling::uniform(mp.circuit.gate_count()),
        &cfg,
    )
    .expect("mapped job runs");
    let logical = mp.to_logical_counts(&counts);
    match ideal_outcome(original) {
        Some(target) => logical.probability(target),
        None => 1.0 - metrics::jsd(&logical.distribution(), &noiseless_probabilities(original)),
    }
}

fn main() {
    let device = ibm::toronto();
    println!(
        "Ablation A6: shortest-path vs SABRE-lookahead routing ({})\n",
        device.name()
    );
    let mut t = Table::new(&[
        "benchmark",
        "swaps (greedy)",
        "swaps (SABRE)",
        "fidelity (greedy)",
        "fidelity (SABRE)",
    ]);
    let mut greedy_swaps = 0usize;
    let mut sabre_swaps = 0usize;
    for b in library::all() {
        let circuit = b.circuit();
        let allocs = allocate_partitions(
            &device,
            &[&circuit],
            &PartitionPolicy::NoiseAware(CrosstalkTreatment::Sigma(4.0)),
        )
        .expect("allocation");
        let partition = &allocs[0].qubits;
        let initial = initial_mapping(&device, partition, &circuit);
        let greedy = route(&device, partition, &circuit, &initial, |_| 0.0);
        let sabre = route_sabre(
            &device,
            partition,
            &circuit,
            &initial,
            &SabreOptions::default(),
        );
        greedy_swaps += greedy.swap_count;
        sabre_swaps += sabre.swap_count;
        let seed = EXPERIMENT_SEED ^ b.name.len() as u64;
        t.row_owned(vec![
            b.name.to_string(),
            greedy.swap_count.to_string(),
            sabre.swap_count.to_string(),
            fix(fidelity(&device, &circuit, &greedy, seed), 3),
            fix(fidelity(&device, &circuit, &sabre, seed), 3),
        ]);
    }
    print!("{t}");
    println!("\nTotal swaps: greedy {greedy_swaps} vs SABRE {sabre_swaps} — lookahead lets one",);
    println!("SWAP serve several pending gates (fidelity = PST or 1 - JSD).");
}
