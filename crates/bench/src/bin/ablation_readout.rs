//! Ablation **A5**: measurement error mitigation (Bravyi et al., cited
//! in Sec. IV-D) applied on top of QuCP parallel execution — how much of
//! the parallel-execution fidelity loss is readout, and how much of it
//! the tensored-inverse correction recovers.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin ablation_readout
//! ```

use qucp_bench::{combo_circuits, combo_label, EXPERIMENT_SEED, FIG3B_COMBOS, PAPER_SHOTS};
use qucp_core::report::{fix, Table};
use qucp_core::{execute_parallel, strategy, ParallelConfig};
use qucp_device::ibm;
use qucp_sim::{ideal_outcome, ExecutionConfig};
use qucp_zne::mitigate_distribution;

fn main() {
    let device = ibm::toronto();
    let cfg = ParallelConfig {
        execution: ExecutionConfig::default()
            .with_shots(PAPER_SHOTS)
            .with_seed(EXPERIMENT_SEED),
        optimize: true,
    };
    println!(
        "Ablation A5: readout mitigation on top of QuCP ({})\n",
        device.name()
    );
    let mut t = Table::new(&["workload", "raw PST", "mitigated PST", "gain"]);
    let mut raw_sum = 0.0;
    let mut mit_sum = 0.0;
    let mut n = 0usize;
    for combo in &FIG3B_COMBOS[..6] {
        let programs = combo_circuits(combo);
        let out =
            execute_parallel(&device, &programs, &strategy::qucp(4.0), &cfg).expect("parallel run");
        let mut raw_pst = 0.0;
        let mut mit_pst = 0.0;
        for (result, program) in out.programs.iter().zip(&programs) {
            let target = ideal_outcome(program).expect("deterministic suite");
            raw_pst += result.counts.probability(target);
            // Per-qubit readout errors of the partition, in logical order
            // (counts are already permuted back to logical wires whose
            // physical carriers are the partition's qubits in final-map
            // order; the tensored correction only needs per-qubit rates,
            // which are partition-wide here).
            let errors: Vec<f64> = result
                .partition
                .iter()
                .map(|&q| device.calibration().readout_error(q))
                .collect();
            let corrected = mitigate_distribution(&result.counts.distribution(), &errors)
                .expect("invertible readout");
            mit_pst += corrected[target];
        }
        raw_pst /= programs.len() as f64;
        mit_pst /= programs.len() as f64;
        raw_sum += raw_pst;
        mit_sum += mit_pst;
        n += 1;
        t.row_owned(vec![
            combo_label(combo),
            fix(raw_pst, 3),
            fix(mit_pst, 3),
            format!("{:+.3}", mit_pst - raw_pst),
        ]);
    }
    print!("{t}");
    println!(
        "\nMean PST {:.3} -> {:.3} ({:+.1}% relative) — readout is a material share",
        raw_sum / n as f64,
        mit_sum / n as f64,
        100.0 * (mit_sum - raw_sum) / raw_sum
    );
    println!("of the parallel-execution fidelity loss, and is recoverable classically.");
}
