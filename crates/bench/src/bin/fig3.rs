//! Regenerates **Fig. 3** of the paper: fidelity of three simultaneous
//! benchmarks on IBM Q 27 Toronto, QuCP vs CNA — (a) JSD on the
//! distribution benchmarks, (b) PST on the deterministic benchmarks.
//!
//! ```text
//! cargo run --release -p qucp-bench --bin fig3
//! ```

use qucp_bench::{
    combo_circuits, combo_label, EXPERIMENT_SEED, FIG3A_COMBOS, FIG3B_COMBOS, PAPER_SHOTS,
};
use qucp_core::report::{fix, Table};
use qucp_core::{execute_parallel, strategy, ParallelConfig};
use qucp_device::ibm;
use qucp_sim::ExecutionConfig;

fn main() {
    let device = ibm::toronto();
    let cfg = ParallelConfig {
        execution: ExecutionConfig::default()
            .with_shots(PAPER_SHOTS)
            .with_seed(EXPERIMENT_SEED),
        optimize: true,
    };
    let qucp = strategy::qucp(4.0);
    let cna = strategy::cna();

    println!(
        "Fig. 3a: JSD of three simultaneous circuits on {} (lower is better)\n",
        device.name()
    );
    let mut ta = Table::new(&["benchmarks", "QuCP", "CNA"]);
    let mut qucp_jsd = Vec::new();
    let mut cna_jsd = Vec::new();
    for combo in &FIG3A_COMBOS {
        let programs = combo_circuits(combo);
        let a = execute_parallel(&device, &programs, &qucp, &cfg).expect("qucp run");
        let b = execute_parallel(&device, &programs, &cna, &cfg).expect("cna run");
        qucp_jsd.push(a.mean_jsd());
        cna_jsd.push(b.mean_jsd());
        ta.row_owned(vec![
            combo_label(combo),
            fix(a.mean_jsd(), 3),
            fix(b.mean_jsd(), 3),
        ]);
    }
    print!("{ta}");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let jsd_gain = 100.0 * (mean(&cna_jsd) - mean(&qucp_jsd)) / mean(&cna_jsd);
    println!(
        "\nMean JSD: QuCP {:.3} vs CNA {:.3} -> {:.1}% improvement (paper: 10.5%)\n",
        mean(&qucp_jsd),
        mean(&cna_jsd),
        jsd_gain
    );

    println!("Fig. 3b: PST of three simultaneous circuits (higher is better)\n");
    let mut tb = Table::new(&["benchmarks", "QuCP", "CNA"]);
    let mut qucp_pst = Vec::new();
    let mut cna_pst = Vec::new();
    for combo in &FIG3B_COMBOS {
        let programs = combo_circuits(combo);
        let a = execute_parallel(&device, &programs, &qucp, &cfg).expect("qucp run");
        let b = execute_parallel(&device, &programs, &cna, &cfg).expect("cna run");
        qucp_pst.push(a.mean_pst().expect("deterministic"));
        cna_pst.push(b.mean_pst().expect("deterministic"));
        tb.row_owned(vec![
            combo_label(combo),
            fix(*qucp_pst.last().unwrap(), 3),
            fix(*cna_pst.last().unwrap(), 3),
        ]);
    }
    print!("{tb}");
    let pst_gain = 100.0 * (mean(&qucp_pst) - mean(&cna_pst)) / mean(&cna_pst);
    println!(
        "\nMean PST: QuCP {:.3} vs CNA {:.3} -> {:.1}% improvement (paper: 89.9%)",
        mean(&qucp_pst),
        mean(&cna_pst),
        pst_gain
    );
}
